"""In-order core timing model with a memory-wall term.

The Atom C2758's Silvermont cores are (mostly) in-order, so a simple
additive CPI model is faithful: the time to retire an instruction is a
core-pipeline component that scales with clock frequency plus a memory
stall component that does not —

    seconds_per_instruction = CPI_core / f  +  (MPKI / 1000) · L_mem_eff

where ``L_mem_eff`` is the average memory latency after overlap
(memory-level parallelism hides part of each miss).  This is what makes
frequency scaling class-dependent: compute-bound applications (low MPKI)
speed up almost linearly with f while memory-bound applications see
diminishing returns — exactly the interplay §4.1 of the paper measures.

The model is deliberately vector-friendly: all methods accept NumPy
arrays for frequency/MPKI and broadcast, so the brute-force sweeps in
:mod:`repro.model.sweep` evaluate whole configuration grids at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class CoreModel:
    """Timing model for one core.

    Parameters
    ----------
    mem_latency_s:
        Raw DRAM access latency in seconds (~90 ns for DDR3-1600 on a
        small uncore).
    mlp_overlap:
        Fraction of each miss latency hidden by memory-level
        parallelism and prefetching (0 = fully exposed, 1 = free).
        In-order Silvermont hides relatively little.
    """

    mem_latency_s: float = 90e-9
    mlp_overlap: float = 0.35

    def __post_init__(self) -> None:
        check_positive("mem_latency_s", self.mem_latency_s)
        check_probability("mlp_overlap", self.mlp_overlap)

    @property
    def effective_latency_s(self) -> float:
        """Per-miss stall after MLP overlap."""
        return self.mem_latency_s * (1.0 - self.mlp_overlap)

    def seconds_per_instruction(self, frequency, cpi_core, llc_mpki):
        """Average wall seconds to retire one instruction.

        All arguments broadcast (scalars or arrays).  ``cpi_core`` is the
        cache-resident CPI (1/IPC0); ``llc_mpki`` the effective LLC
        misses per kilo-instruction *after* any cache-sharing inflation.
        """
        frequency = np.asarray(frequency, dtype=float)
        cpi_core = np.asarray(cpi_core, dtype=float)
        llc_mpki = np.asarray(llc_mpki, dtype=float)
        if np.any(frequency <= 0):
            raise ValueError("frequency must be positive")
        return cpi_core / frequency + (llc_mpki / 1000.0) * self.effective_latency_s

    def effective_ipc(self, frequency, cpi_core, llc_mpki):
        """Observed IPC (instructions per *cycle* at ``frequency``).

        This is what a perf counter would report: retired instructions
        divided by elapsed core cycles.  It shrinks at high frequency
        for miss-heavy code because stall seconds convert to more cycles.
        """
        spi = self.seconds_per_instruction(frequency, cpi_core, llc_mpki)
        return 1.0 / (np.asarray(frequency, dtype=float) * spi)

    def compute_seconds(self, instructions, frequency, cpi_core, llc_mpki):
        """Wall seconds of pure compute for ``instructions`` retired."""
        instructions = np.asarray(instructions, dtype=float)
        if np.any(instructions < 0):
            raise ValueError("instructions must be non-negative")
        return instructions * self.seconds_per_instruction(frequency, cpi_core, llc_mpki)

    def stall_fraction(self, frequency, cpi_core, llc_mpki):
        """Fraction of execution time spent in memory stalls.

        Used by the power model (stalled cores draw less than busy
        cores) and by the dstat-like telemetry to split user time.
        """
        spi = self.seconds_per_instruction(frequency, cpi_core, llc_mpki)
        stall = (np.asarray(llc_mpki, dtype=float) / 1000.0) * self.effective_latency_s
        return stall / spi
