"""Microserver hardware substrate.

Models the paper's testbed — an Intel Atom C2758 microserver node with
8 cores, a shared last-level cache, one DDR3-1600 memory channel and a
local disk — as a set of small, stateless, calibrated component models.
Mutable execution state lives in the MapReduce engine; these classes
answer questions like "what is the effective IPC at this frequency with
this much cache?" and "what does the node draw at this utilisation?".

The paper measures whole-system power with a Wattsup meter; our
:class:`~repro.hardware.power.PowerModel` produces the equivalent
whole-node figure (idle + active cores + memory + disk activity).
"""

from repro.hardware.frequency import DVFS_LEVELS, DvfsTable, OperatingPoint
from repro.hardware.governor import DvfsGovernor, GOVERNOR_KINDS
from repro.hardware.cpu import CoreModel
from repro.hardware.cache import SharedCacheModel, CacheAllocation
from repro.hardware.memorybw import MemoryBandwidthModel
from repro.hardware.disk import DiskModel
from repro.hardware.power import PowerModel, PowerBreakdown
from repro.hardware.node import NodeSpec, ATOM_C2758
from repro.hardware.cluster import ClusterSpec
from repro.hardware.classes import (
    ATOM,
    NODE_CLASSES,
    NodeClass,
    XEON,
    XEON_DVFS_LEVELS,
    XEON_E5,
    class_name_of,
    get_node_class,
    roster_from_classes,
)

__all__ = [
    "DVFS_LEVELS",
    "DvfsTable",
    "OperatingPoint",
    "DvfsGovernor",
    "GOVERNOR_KINDS",
    "CoreModel",
    "SharedCacheModel",
    "CacheAllocation",
    "MemoryBandwidthModel",
    "DiskModel",
    "PowerModel",
    "PowerBreakdown",
    "NodeSpec",
    "ATOM_C2758",
    "ClusterSpec",
    "NodeClass",
    "NODE_CLASSES",
    "ATOM",
    "XEON",
    "XEON_E5",
    "XEON_DVFS_LEVELS",
    "class_name_of",
    "get_node_class",
    "roster_from_classes",
]
