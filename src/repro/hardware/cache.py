"""Shared last-level cache contention model.

Co-located applications compete for the node's LLC (the C2758 has a
4 MB shared L2).  We model the resulting interference with two standard
ingredients:

1. **Capacity partitioning.**  Each co-runner obtains a share of the
   cache proportional to its *pressure* — the product of its intrinsic
   cache demand and how many of its mapper tasks are active.  This is
   the steady state that pseudo-LRU insertion converges to under
   competing reference streams.

2. **Power-law miss curve.**  An application's miss rate as a function
   of its allocated capacity ``c`` follows ``MPKI(c) = MPKI0 ·
   (C_full / c)^alpha`` (capped), the classic power-law locality model.
   ``alpha`` is per-application: streaming I/O codes barely care
   (alpha≈0) while memory-bound analytics degrade steeply.

The output — effective MPKI per co-runner — feeds the
:class:`~repro.hardware.cpu.CoreModel` memory-wall term, which is how
cache interference becomes time and energy in this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.units import MB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CacheAllocation:
    """Resolved cache share for one co-runner."""

    share_bytes: float
    share_fraction: float
    mpki_scale: float


@dataclass(frozen=True)
class SharedCacheModel:
    """Capacity contention in a shared LLC.

    Parameters
    ----------
    capacity_bytes:
        Total shared LLC capacity.
    max_inflation:
        Upper bound on the MPKI multiplier; real caches bottom out once
        the working set no longer fits at all.
    """

    capacity_bytes: float = 4 * MB
    max_inflation: float = 3.0

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        if self.max_inflation < 1.0:
            raise ValueError("max_inflation must be >= 1")

    def partition(self, pressures: Sequence[float]) -> list[float]:
        """Split capacity proportionally to each co-runner's pressure.

        A zero-pressure entry (an app whose working set fits in its
        private caches) receives a nominal sliver rather than zero so
        the miss-curve math stays defined.
        """
        p = np.asarray(list(pressures), dtype=float)
        if p.size == 0:
            return []
        if np.any(p < 0):
            raise ValueError("pressures must be non-negative")
        total = p.sum()
        if total <= 0:
            shares = np.full(p.size, 1.0 / p.size)
        else:
            floor = 0.02
            shares = np.maximum(p / total, floor)
            shares = shares / shares.sum()
        return [float(s) for s in shares]

    def mpki_inflation(self, share_fraction, alpha) -> np.ndarray:
        """MPKI multiplier for a co-runner holding ``share_fraction`` of LLC.

        ``MPKI(c)/MPKI(C_full) = share^(-alpha)``, clamped to
        ``[1, max_inflation]``.  Broadcasts over arrays.
        """
        share = np.asarray(share_fraction, dtype=float)
        alpha = np.asarray(alpha, dtype=float)
        if np.any(share <= 0) or np.any(share > 1.0 + 1e-12):
            raise ValueError("share_fraction must be in (0, 1]")
        if np.any(alpha < 0):
            raise ValueError("alpha must be non-negative")
        scale = np.power(np.minimum(share, 1.0), -alpha)
        return np.clip(scale, 1.0, self.max_inflation)

    def allocate(
        self, pressures: Sequence[float], alphas: Sequence[float]
    ) -> list[CacheAllocation]:
        """Full contention resolution for a set of co-runners."""
        if len(pressures) != len(alphas):
            raise ValueError("pressures and alphas must have equal length")
        shares = self.partition(pressures)
        out = []
        for share, alpha in zip(shares, alphas):
            scale = float(self.mpki_inflation(share, alpha))
            out.append(
                CacheAllocation(
                    share_bytes=share * self.capacity_bytes,
                    share_fraction=share,
                    mpki_scale=scale,
                )
            )
        return out
