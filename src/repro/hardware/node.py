"""Node specification: the composition of all per-node component models.

A :class:`NodeSpec` is immutable and shared by every layer — the
discrete-event engine, the closed-form cost model, and the telemetry
samplers all consult the same spec, which is what keeps the fast sweep
path and the detailed simulation consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cache import SharedCacheModel
from repro.hardware.cpu import CoreModel
from repro.hardware.disk import DiskModel
from repro.hardware.frequency import DvfsTable
from repro.hardware.memorybw import MemoryBandwidthModel
from repro.hardware.power import PowerModel
from repro.utils.units import GB, MB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NodeSpec:
    """One microserver node.

    Defaults model the paper's Intel Atom C2758 testbed node: 8 cores,
    8 GB DDR3-1600, 4 MB shared L2, one local SATA disk (§2.1).
    """

    name: str = "atom-c2758"
    n_cores: int = 8
    memory_bytes: float = 8 * GB
    #: Memory held by the OS, JVM daemons and HDFS datanode.
    reserved_memory_bytes: float = 1.5 * GB
    #: Node NIC bandwidth (1 GbE), bytes/s — carries remote shuffle.
    nic_bw: float = 119 * MB
    core: CoreModel = field(default_factory=CoreModel)
    cache: SharedCacheModel = field(default_factory=SharedCacheModel)
    membw: MemoryBandwidthModel = field(default_factory=MemoryBandwidthModel)
    disk: DiskModel = field(default_factory=DiskModel)
    power: PowerModel = field(default_factory=PowerModel)
    dvfs: DvfsTable = field(default_factory=DvfsTable)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        check_positive("memory_bytes", self.memory_bytes)
        check_positive("reserved_memory_bytes", self.reserved_memory_bytes, strict=False)
        if self.reserved_memory_bytes >= self.memory_bytes:
            raise ValueError("reserved memory exceeds node memory")
        check_positive("nic_bw", self.nic_bw)

    @property
    def available_memory_bytes(self) -> float:
        """Memory available to MapReduce tasks (total minus reserved)."""
        return self.memory_bytes - self.reserved_memory_bytes

    @property
    def frequencies(self) -> tuple[float, ...]:
        """Valid DVFS frequencies (Hz, ascending)."""
        return self.dvfs.frequencies

    def validate_mappers(self, n_mappers: int) -> int:
        """Check a mapper count fits the node's cores."""
        if not 1 <= n_mappers <= self.n_cores:
            raise ValueError(
                f"n_mappers must be in [1, {self.n_cores}], got {n_mappers}"
            )
        return n_mappers


#: The paper's testbed node.
ATOM_C2758 = NodeSpec()
