"""DVFS governors: how an *untuned* node picks its frequency.

ECoST sets the frequency explicitly; everything it is compared against
runs whatever the platform's governor chooses.  This module models the
three classic cpufreq governors so the untuned baselines' frequency
assumption (§8's [NT] policies) is an explicit, testable decision
rather than a constant:

* ``powersave`` — always the lowest operating point (the shipping
  default on many microserver boards, and our [NT] baseline);
* ``performance`` — always the highest;
* ``ondemand`` — steps up to the maximum when utilisation crosses the
  up-threshold, decays one step when it falls below the down
  threshold (the classic Linux heuristic).

The governor consumes the utilisation a job would have at the
governor's current frequency, which is how the real feedback loop
works (a busier core requests a higher clock, which lowers measured
utilisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.frequency import DvfsTable
from repro.utils.validation import check_in, check_probability

GOVERNOR_KINDS = ("powersave", "performance", "ondemand")


@dataclass
class DvfsGovernor:
    """A per-node frequency governor over a discrete DVFS table."""

    kind: str = "ondemand"
    dvfs: DvfsTable = field(default_factory=DvfsTable)
    up_threshold: float = 0.80
    down_threshold: float = 0.30
    _level: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        check_in("kind", self.kind, GOVERNOR_KINDS)
        check_probability("up_threshold", self.up_threshold)
        check_probability("down_threshold", self.down_threshold)
        if self.down_threshold >= self.up_threshold:
            raise ValueError("down_threshold must be below up_threshold")
        if self.kind == "performance":
            self._level = len(self.dvfs.levels) - 1
        else:
            self._level = 0

    @property
    def frequency(self) -> float:
        """The currently selected frequency (Hz)."""
        return self.dvfs.levels[self._level].frequency

    def observe(self, utilization: float) -> float:
        """Feed one utilisation sample; returns the (new) frequency.

        ``powersave``/``performance`` are static; ``ondemand`` jumps to
        the top on load (the Linux heuristic jumps, it does not step
        up) and steps down one level at a time when idle.
        """
        check_probability("utilization", utilization)
        if self.kind == "ondemand":
            if utilization >= self.up_threshold:
                self._level = len(self.dvfs.levels) - 1
            elif utilization <= self.down_threshold and self._level > 0:
                self._level -= 1
        return self.frequency

    def settle(self, utilization: float, *, max_steps: int = 16) -> float:
        """Iterate :meth:`observe` to the governor's fixed point.

        ``utilization`` is the demand at the *maximum* frequency; at a
        lower clock the same work keeps the core busier by the
        frequency ratio, which is the feedback the loop models.
        """
        check_probability("utilization", utilization)
        f_max = self.dvfs.max_point.frequency
        for _ in range(max_steps):
            before = self._level
            seen = min(utilization * f_max / self.frequency, 1.0)
            self.observe(seen)
            if self._level == before:
                break
        return self.frequency
