"""Whole-node power model (the simulated Wattsup meter's ground truth).

The paper measures wall power for the entire system at one-second
granularity and derives core power by subtracting idle (§2.5).  We
model node power as

    P = P_idle
      + Σ_cores P_core_max · dyn_scale(f) · activity
      + P_mem_max  · memory-bandwidth utilisation
      + P_disk_max · disk utilisation

where ``dyn_scale(f) = (V/V_max)² · (f/f_max)`` is the CMOS dynamic
scaling of the DVFS table, and a core's *activity* discounts memory
stall cycles (a stalled in-order core clock-gates most of its pipeline).

Calibration targets an Atom C2758 system: ~31 W wall at idle (board,
disk spun up, NIC, PSU losses), ~20 W additional at full load and top
frequency — consistent with the 20 W SoC TDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.frequency import DvfsTable, OperatingPoint
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class PowerBreakdown:
    """Decomposed node power (watts)."""

    idle: float
    cores: float
    memory: float
    disk: float

    @property
    def total(self) -> float:
        return self.idle + self.cores + self.memory + self.disk

    @property
    def dynamic(self) -> float:
        """Power above idle — the paper's 'core power' after subtraction."""
        return self.cores + self.memory + self.disk


@dataclass(frozen=True)
class PowerModel:
    """Calibrated node power model."""

    idle_power: float = 31.0  # watts, whole system at idle
    core_max_power: float = 2.2  # watts per fully-busy core at max DVFS point
    stall_power_fraction: float = 0.45  # relative draw of a stalled core
    mem_max_power: float = 3.5  # watts at 100% channel utilisation
    disk_max_power: float = 4.0  # watts of seek/transfer activity above idle
    dvfs: DvfsTable = DvfsTable()

    def __post_init__(self) -> None:
        check_positive("idle_power", self.idle_power)
        check_positive("core_max_power", self.core_max_power)
        check_probability("stall_power_fraction", self.stall_power_fraction)
        check_positive("mem_max_power", self.mem_max_power)
        check_positive("disk_max_power", self.disk_max_power)

    def dynamic_scale(self, frequency) -> np.ndarray:
        """V²f scale factor of a core at ``frequency`` vs. the max point.

        Accepts scalars or arrays of frequencies; every frequency must
        be a valid DVFS level.
        """
        freq = np.atleast_1d(np.asarray(frequency, dtype=float))
        ref = self.dvfs.max_point
        scales = np.empty_like(freq)
        for i, f in enumerate(freq.flat):
            point = self.dvfs.point_for(float(f))
            scales.flat[i] = point.dynamic_scale(ref)
        return scales if np.ndim(frequency) else float(scales[0])

    def core_power(self, frequency, busy_fraction, stall_fraction) -> np.ndarray:
        """Power of one core (watts above idle).

        ``busy_fraction`` is the share of wall time the core is running
        a task; ``stall_fraction`` the share of that busy time spent in
        memory stalls (drawing ``stall_power_fraction`` of busy power).
        """
        busy = np.asarray(busy_fraction, dtype=float)
        stall = np.asarray(stall_fraction, dtype=float)
        if np.any(busy < 0) or np.any(busy > 1.0 + 1e-9):
            raise ValueError("busy_fraction must be in [0, 1]")
        if np.any(stall < 0) or np.any(stall > 1.0 + 1e-9):
            raise ValueError("stall_fraction must be in [0, 1]")
        activity = busy * (1.0 - stall * (1.0 - self.stall_power_fraction))
        return self.core_max_power * self.dynamic_scale(frequency) * activity

    def node_power(
        self,
        core_states: Sequence[tuple[float, float, float]],
        mem_utilization: float,
        disk_utilization: float,
    ) -> PowerBreakdown:
        """Full node power from per-core states and subsystem utilisations.

        ``core_states`` is a sequence of ``(frequency, busy_fraction,
        stall_fraction)`` tuples, one per core that has work assigned;
        unlisted cores idle (their draw is inside ``idle_power``).
        """
        check_probability("mem_utilization", mem_utilization)
        check_probability("disk_utilization", disk_utilization)
        cores = 0.0
        for frequency, busy, stall in core_states:
            cores += float(self.core_power(frequency, busy, stall))
        return PowerBreakdown(
            idle=self.idle_power,
            cores=cores,
            memory=self.mem_max_power * mem_utilization,
            disk=self.disk_max_power * disk_utilization,
        )
