"""Lookup-table model (the paper's LkT, §6.4).

The simplest predictor: memorise training keys and their values, and
answer queries with the value of the nearest stored key.  In ECoST the
keys are (class-pair, data sizes) descriptors and the values the best
known configurations; here the structure is generic so tests can
exercise it on arbitrary data.

Prediction is O(table size) with a vectorised distance computation —
Fig. 8's point is precisely that this is trivially cheap next to MLP
inference, while populating the table needs an exhaustive search.
"""

from __future__ import annotations

from typing import Generic, Sequence, TypeVar

import numpy as np

V = TypeVar("V")


class LookupTable(Generic[V]):
    """Nearest-key memorisation with optional per-dimension scaling."""

    def __init__(self, *, normalize: bool = True) -> None:
        self.normalize = normalize
        self._keys: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._values: list[V] = []

    def fit(self, keys: np.ndarray, values: Sequence[V]) -> "LookupTable[V]":
        keys = np.asarray(keys, dtype=float)
        if keys.ndim != 2:
            raise ValueError("keys must be 2-D (entries × key dims)")
        if keys.shape[0] != len(values):
            raise ValueError("one value per key required")
        if keys.shape[0] == 0:
            raise ValueError("empty table")
        self._keys = keys
        self._values = list(values)
        if self.normalize:
            span = keys.max(axis=0) - keys.min(axis=0)
            self._scale = np.where(span < 1e-12, 1.0, span)
        else:
            self._scale = np.ones(keys.shape[1])
        return self

    def __len__(self) -> int:
        return len(self._values)

    def nearest_index(self, key: np.ndarray) -> int:
        if self._keys is None or self._scale is None:
            raise RuntimeError("table is not fitted")
        key = np.asarray(key, dtype=float)
        if key.shape != (self._keys.shape[1],):
            raise ValueError(
                f"key must have {self._keys.shape[1]} dims, got shape {key.shape}"
            )
        d = np.linalg.norm((self._keys - key) / self._scale, axis=1)
        return int(np.argmin(d))

    def lookup(self, key: np.ndarray) -> V:
        """Value of the nearest stored key."""
        return self._values[self.nearest_index(key)]

    def lookup_many(self, keys: np.ndarray) -> list[V]:
        keys = np.asarray(keys, dtype=float)
        if keys.ndim == 1:
            keys = keys[None, :]
        return [self.lookup(k) for k in keys]

    # Regressor-compatible facade for numeric values -------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        vals = self.lookup_many(np.asarray(X, dtype=float))
        try:
            return np.asarray(vals, dtype=float)
        except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
            raise TypeError("predict() requires numeric table values") from exc
