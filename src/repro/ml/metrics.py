"""Regression metrics: the scores the paper's tables report."""

from __future__ import annotations

import numpy as np


def _pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(y_true, dtype=float)
    p = np.asarray(y_pred, dtype=float)
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("empty arrays")
    return t, p


def mse(y_true, y_pred) -> float:
    t, p = _pair(y_true, y_pred)
    return float(((t - p) ** 2).mean())


def mae(y_true, y_pred) -> float:
    t, p = _pair(y_true, y_pred)
    return float(np.abs(t - p).mean())


def mean_ape(y_true, y_pred) -> float:
    """Mean absolute percentage error — Table 1's APE (%)."""
    t, p = _pair(y_true, y_pred)
    if np.any(t == 0):
        raise ValueError("APE undefined for zero targets")
    return float((np.abs(t - p) / np.abs(t)).mean() * 100.0)


def r2_score(y_true, y_pred) -> float:
    t, p = _pair(y_true, y_pred)
    ss_res = float(((t - p) ** 2).sum())
    ss_tot = float(((t - t.mean()) ** 2).sum())
    if ss_tot == 0:
        raise ValueError("R² undefined for constant targets")
    return 1.0 - ss_res / ss_tot
