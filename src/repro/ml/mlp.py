"""Multilayer perceptron regressor (NumPy backprop + Adam).

The paper's most accurate but most expensive STP model (Table 1: 0.77%
average APE; Fig. 8: longest training and prediction times).  A small
fully-connected network with tanh hidden layers; inputs are z-scored
internally and the target is optionally log-transformed (EDP spans
orders of magnitude, and relative — APE — accuracy is what Table 1
scores, which is exactly what a log-space L2 loss optimises).

Training is full-batch-shuffled mini-batch Adam with early stopping on
a held-out split; all math is vectorised over the batch.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.base import check_X, check_Xy
from repro.ml.preprocessing import StandardScaler, train_val_split
from repro.utils.rng import SeedLike, rng_from


class MLPRegressor:
    """Feed-forward network: d → hidden… → 1."""

    def __init__(
        self,
        hidden: Sequence[int] = (48, 24),
        *,
        epochs: int = 400,
        batch_size: int = 64,
        lr: float = 1e-3,
        weight_decay: float = 1e-6,
        log_target: bool = True,
        early_stop_patience: int = 40,
        val_fraction: float = 0.15,
        seed: SeedLike = 0,
    ) -> None:
        if not hidden or any(h < 1 for h in hidden):
            raise ValueError("hidden must be a non-empty sequence of sizes >= 1")
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.log_target = log_target
        self.early_stop_patience = early_stop_patience
        self.val_fraction = val_fraction
        self.seed = seed
        self._weights: list[np.ndarray] | None = None
        self._biases: list[np.ndarray] | None = None
        self._x_scaler: StandardScaler | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self.n_features_: int | None = None
        self.train_losses_: list[float] = []

    # ---------------------------------------------------------- internals
    def _init_params(self, d: int, rng: np.random.Generator) -> None:
        sizes = [d, *self.hidden, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # Xavier/Glorot scaling for tanh.
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, Z: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        assert self._weights is not None and self._biases is not None
        acts = [Z]
        h = Z
        for W, b in zip(self._weights[:-1], self._biases[:-1]):
            h = np.tanh(h @ W + b)
            acts.append(h)
        out = h @ self._weights[-1] + self._biases[-1]
        return out[:, 0], acts

    def _transform_y(self, y: np.ndarray) -> np.ndarray:
        if self.log_target:
            if np.any(y <= 0):
                raise ValueError("log_target requires strictly positive targets")
            y = np.log(y)
        return (y - self._y_mean) / self._y_std

    def _untransform_y(self, t: np.ndarray) -> np.ndarray:
        y = t * self._y_std + self._y_mean
        return np.exp(y) if self.log_target else y

    # ---------------------------------------------------------------- API
    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X, y = check_Xy(X, y)
        self.n_features_ = X.shape[1]
        rng = rng_from(self.seed)
        self._x_scaler = StandardScaler().fit(X)
        if self.log_target and np.any(y <= 0):
            raise ValueError("log_target requires strictly positive targets")
        ylog = np.log(y) if self.log_target else y
        self._y_mean = float(ylog.mean())
        self._y_std = float(ylog.std()) or 1.0

        Z = self._x_scaler.transform(X)
        T = self._transform_y(y)
        if len(y) >= 10 and self.early_stop_patience > 0:
            Zt, Tt, Zv, Tv = train_val_split(
                Z, T, val_fraction=self.val_fraction, seed=rng.integers(2**31)
            )
        else:
            Zt, Tt, Zv, Tv = Z, T, Z, T

        self._init_params(Z.shape[1], rng)
        params = self._weights + self._biases
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        best_val = np.inf
        best_params = [p.copy() for p in params]
        stale = 0
        n = Zt.shape[0]
        self.train_losses_ = []
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for lo in range(0, n, self.batch_size):
                idx = order[lo : lo + self.batch_size]
                zb, tb = Zt[idx], Tt[idx]
                pred, acts = self._forward(zb)
                err = pred - tb
                epoch_loss += float((err**2).sum())
                # Backprop.
                grads_W: list[np.ndarray] = []
                grads_b: list[np.ndarray] = []
                delta = (2.0 * err / len(idx))[:, None]
                for layer in range(len(self._weights) - 1, -1, -1):
                    a_prev = acts[layer]
                    grads_W.insert(0, a_prev.T @ delta + self.weight_decay * self._weights[layer])
                    grads_b.insert(0, delta.sum(axis=0))
                    if layer > 0:
                        delta = (delta @ self._weights[layer].T) * (1.0 - acts[layer] ** 2)
                # Adam update.
                step += 1
                grads = grads_W + grads_b
                for i, (p, g) in enumerate(zip(params, grads)):
                    m[i] = beta1 * m[i] + (1 - beta1) * g
                    v[i] = beta2 * v[i] + (1 - beta2) * g * g
                    mhat = m[i] / (1 - beta1**step)
                    vhat = v[i] / (1 - beta2**step)
                    p -= self.lr * mhat / (np.sqrt(vhat) + eps)
            self.train_losses_.append(epoch_loss / n)
            if self.early_stop_patience > 0:
                val_pred, _ = self._forward(Zv)
                val = float(((val_pred - Tv) ** 2).mean())
                if val < best_val - 1e-9:
                    best_val = val
                    best_params = [p.copy() for p in params]
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.early_stop_patience:
                        break
        if self.early_stop_patience > 0:
            k = len(self._weights)
            self._weights = best_params[:k]
            self._biases = best_params[k:]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._weights is None or self._x_scaler is None or self.n_features_ is None:
            raise RuntimeError("model is not fitted")
        X = check_X(X, self.n_features_)
        Z = self._x_scaler.transform(X)
        out, _ = self._forward(Z)
        return self._untransform_y(out)
