"""Machine-learning models for self-tuning prediction (§6.3).

From-scratch NumPy implementations of the paper's three Weka model
families plus the lookup table:

* :class:`~repro.ml.linreg.LinearRegression` — ordinary least squares
  (optionally ridge-regularised);
* :class:`~repro.ml.reptree.REPTree` — a variance-reduction regression
  tree with *reduced-error pruning* against a held-out validation set
  (Weka's REPTree);
* :class:`~repro.ml.mlp.MLPRegressor` — a multilayer perceptron
  trained with Adam;
* :class:`~repro.ml.lookup.LookupTable` — nearest-key memorisation of
  the best known configurations.

The three learned models share the :class:`~repro.ml.base.Regressor`
interface, so the self-tuning pipeline treats them interchangeably.
"""

from repro.ml.base import Regressor
from repro.ml.linreg import LinearRegression
from repro.ml.reptree import REPTree
from repro.ml.mlp import MLPRegressor
from repro.ml.lookup import LookupTable
from repro.ml.preprocessing import StandardScaler, train_val_split
from repro.ml.metrics import mean_ape, mse, mae, r2_score
from repro.ml.timing import time_model

__all__ = [
    "Regressor",
    "LinearRegression",
    "REPTree",
    "MLPRegressor",
    "LookupTable",
    "StandardScaler",
    "train_val_split",
    "mean_ape",
    "mse",
    "mae",
    "r2_score",
    "time_model",
]
