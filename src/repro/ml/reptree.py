"""REPTree: variance-reduction regression tree with reduced-error pruning.

Weka's REPTree — the model the paper ultimately recommends (§7.2:
"best trade-offs between accuracy, complexity as well as prediction
time") — is a fast decision tree that

1. grows by choosing, at each node, the (feature, threshold) split
   maximising variance reduction, and
2. prunes bottom-up against a held-out *pruning set*: a subtree is
   collapsed to a leaf whenever the leaf's held-out squared error is
   no worse than the subtree's (reduced-error pruning, the "REP").

Split-point search is vectorised: candidate thresholds for a feature
are evaluated with prefix-sum statistics in O(n log n) per feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ml.base import check_X, check_Xy
from repro.ml.preprocessing import train_val_split
from repro.utils.rng import SeedLike


@dataclass
class _Node:
    value: float  # mean of training targets reaching this node
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def to_leaf(self) -> None:
        self.left = None
        self.right = None
        self.feature = -1


def _best_split(X: np.ndarray, y: np.ndarray, min_leaf: int) -> tuple[int, float, float] | None:
    """(feature, threshold, variance_gain) of the best split, or None.

    Vectorised over candidate thresholds via cumulative sums of the
    target sorted by each feature.
    """
    n, d = X.shape
    base_sse = float(((y - y.mean()) ** 2).sum())
    best = None
    best_gain = 1e-12
    for j in range(d):
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        ys = y[order]
        # Split after position i puts i+1 samples left.
        csum = np.cumsum(ys)
        csq = np.cumsum(ys**2)
        total, total_sq = csum[-1], csq[-1]
        k = np.arange(1, n)  # left sizes
        left_sum, left_sq = csum[:-1], csq[:-1]
        right_sum = total - left_sum
        right_sq = total_sq - left_sq
        sse = (left_sq - left_sum**2 / k) + (right_sq - right_sum**2 / (n - k))
        valid = (k >= min_leaf) & (n - k >= min_leaf) & (xs[1:] > xs[:-1])
        if not valid.any():
            continue
        idx = np.flatnonzero(valid)
        i = idx[np.argmin(sse[idx])]
        gain = base_sse - float(sse[i])
        if gain > best_gain:
            best_gain = gain
            best = (j, float((xs[i] + xs[i + 1]) / 2.0), gain)
    return best


class REPTree:
    """Regression tree with reduced-error pruning."""

    def __init__(
        self,
        *,
        max_depth: int = 18,
        min_leaf: int = 2,
        prune: bool = True,
        prune_fraction: float = 0.2,
        seed: SeedLike = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_leaf < 1:
            raise ValueError("min_leaf must be >= 1")
        if not 0.0 < prune_fraction < 1.0:
            raise ValueError("prune_fraction must be in (0, 1)")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.prune = prune
        self.prune_fraction = prune_fraction
        self.seed = seed
        self.root_: _Node | None = None
        self.n_features_: int | None = None

    # ------------------------------------------------------------ growth
    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()), n_samples=len(y))
        if depth >= self.max_depth or len(y) < 2 * self.min_leaf or np.ptp(y) == 0:
            return node
        split = _best_split(X, y, self.min_leaf)
        if split is None:
            return node
        j, thr, _gain = split
        mask = X[:, j] <= thr
        node.feature = j
        node.threshold = thr
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    # ----------------------------------------------------------- pruning
    def _prune_rec(self, node: _Node, X: np.ndarray, y: np.ndarray) -> float:
        """Bottom-up REP; returns the subtree's held-out SSE."""
        leaf_sse = float(((y - node.value) ** 2).sum()) if len(y) else 0.0
        if node.is_leaf:
            return leaf_sse
        mask = X[:, node.feature] <= node.threshold
        sub_sse = self._prune_rec(node.left, X[mask], y[mask]) + self._prune_rec(
            node.right, X[~mask], y[~mask]
        )
        if leaf_sse <= sub_sse:
            node.to_leaf()
            return leaf_sse
        return sub_sse

    # --------------------------------------------------------------- API
    def fit(self, X: np.ndarray, y: np.ndarray) -> "REPTree":
        X, y = check_Xy(X, y)
        self.n_features_ = X.shape[1]
        if self.prune and len(y) >= 8:
            Xt, yt, Xv, yv = train_val_split(
                X, y, val_fraction=self.prune_fraction, seed=self.seed
            )
            self.root_ = self._grow(Xt, yt, depth=0)
            self._prune_rec(self.root_, Xv, yv)
        else:
            self.root_ = self._grow(X, y, depth=0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None or self.n_features_ is None:
            raise RuntimeError("model is not fitted")
        X = check_X(X, self.n_features_)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    # ------------------------------------------------------- diagnostics
    @property
    def n_leaves(self) -> int:
        if self.root_ is None:
            raise RuntimeError("model is not fitted")

        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self.root_)

    @property
    def depth(self) -> int:
        if self.root_ is None:
            raise RuntimeError("model is not fitted")

        def d(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))

        return d(self.root_)
