"""Feature scaling and data splitting for the learned models."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, rng_from


class StandardScaler:
    """Column-wise z-scoring with remembered statistics."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.std_ = np.where(std < 1e-12, 1.0, std)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(X, dtype=float) - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(Z, dtype=float) * self.std_ + self.mean_


def train_val_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    val_fraction: float = 0.25,
    seed: SeedLike = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled (X_train, y_train, X_val, y_val) split.

    Guarantees at least one sample on each side for any non-degenerate
    input, which reduced-error pruning depends on.
    """
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    rng = rng_from(seed)
    order = rng.permutation(n)
    n_val = min(max(int(round(n * val_fraction)), 1), n - 1)
    val_idx = order[:n_val]
    tr_idx = order[n_val:]
    return X[tr_idx], y[tr_idx], X[val_idx], y[val_idx]
