"""Ordinary least-squares linear regression (optionally ridge).

The paper's weakest STP model: EDP responds multiplicatively to the
tuning knobs, so a linear surface fits poorly — Table 1 reports ~55%
APE for LR, and §9 discusses why linear prediction frameworks miss
co-scheduled MapReduce behaviour.  Implemented via ``lstsq`` on the
augmented design matrix (SVD-based, rank-robust), with an optional L2
penalty solved in closed form.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_X, check_Xy


class LinearRegression:
    """y ≈ X·w + b by least squares."""

    def __init__(self, ridge: float = 0.0) -> None:
        if ridge < 0:
            raise ValueError("ridge must be >= 0")
        self.ridge = ridge
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X, y = check_Xy(X, y)
        n, d = X.shape
        A = np.hstack([X, np.ones((n, 1))])
        if self.ridge > 0:
            # Closed-form ridge; the intercept is not penalised.
            reg = self.ridge * np.eye(d + 1)
            reg[-1, -1] = 0.0
            w = np.linalg.solve(A.T @ A + reg, A.T @ y)
        else:
            w, *_ = np.linalg.lstsq(A, y, rcond=None)
        self.coef_ = w[:-1]
        self.intercept_ = float(w[-1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self.intercept_ is None:
            raise RuntimeError("model is not fitted")
        X = check_X(X, self.coef_.shape[0])
        return X @ self.coef_ + self.intercept_
