"""Training/prediction timing harness (Figure 8 of the paper).

Measures wall-clock training time and per-query prediction time of an
STP model.  Prediction cost matters online (every incoming application
pays it); training is offline and one-time (§7.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ModelTiming:
    """Measured costs of one model on one dataset."""

    name: str
    train_seconds: float
    predict_seconds_total: float
    n_predictions: int

    @property
    def predict_seconds_per_query(self) -> float:
        return self.predict_seconds_total / max(self.n_predictions, 1)


def time_model(
    name: str,
    fit: Callable[[np.ndarray, np.ndarray], object],
    predict: Callable[[np.ndarray], object],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_query: np.ndarray,
    *,
    repeat_predict: int = 3,
) -> ModelTiming:
    """Time one fit and ``repeat_predict`` prediction passes.

    Prediction time is the *minimum* over repeats (the standard
    timeit convention: the floor is the signal, the rest is noise).
    """
    if repeat_predict < 1:
        raise ValueError("repeat_predict must be >= 1")
    t0 = time.perf_counter()
    fit(X_train, y_train)
    train_s = time.perf_counter() - t0

    best = np.inf
    for _ in range(repeat_predict):
        t0 = time.perf_counter()
        predict(X_query)
        best = min(best, time.perf_counter() - t0)
    return ModelTiming(
        name=name,
        train_seconds=train_s,
        predict_seconds_total=best,
        n_predictions=len(np.atleast_2d(X_query)),
    )
