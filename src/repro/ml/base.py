"""Common regressor interface and input validation."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Regressor(Protocol):
    """Minimal supervised-regression interface."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


def check_Xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a training pair."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("empty training set")
    if not np.all(np.isfinite(X)) or not np.all(np.isfinite(y)):
        raise ValueError("X and y must be finite")
    return X, y


def check_X(X, n_features: int) -> np.ndarray:
    """Validate prediction input against the fitted feature count."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X[None, :]
    if X.ndim != 2 or X.shape[1] != n_features:
        raise ValueError(
            f"X must be (n, {n_features}), got shape {X.shape}"
        )
    if not np.all(np.isfinite(X)):
        raise ValueError("X must be finite")
    return X
