"""The configuration database (§6.2).

Built offline from exhaustive sweeps of the *training* applications:
for every co-located training pair it stores the tuning parameters
that minimised EDP, keyed by the pair's classes and input sizes.
Unknown incoming pairs are answered by nearest-key lookup (this is
the data behind LkT-STP) and the same sweeps provide the training
rows for the learned models (MLM-STP).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.ml.lookup import LookupTable
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.sweep import PairSweepResult
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance

_CLASS_CODE = {AppClass.COMPUTE: 0, AppClass.HYBRID: 1, AppClass.IO: 2, AppClass.MEMORY: 3}


@dataclass(frozen=True)
class DatabaseEntry:
    """Best known configuration for one training pair."""

    class_a: AppClass
    class_b: AppClass
    size_a: int
    size_b: int
    config_a: JobConfig
    config_b: JobConfig
    best_edp: float
    label_a: str
    label_b: str

    def key(self) -> np.ndarray:
        """Numeric lookup key: (class codes, log2 sizes)."""
        return np.array(
            [
                _CLASS_CODE[self.class_a],
                _CLASS_CODE[self.class_b],
                np.log2(self.size_a / GB + 1.0),
                np.log2(self.size_b / GB + 1.0),
            ]
        )


def _canonical(inst_a: AppInstance, inst_b: AppInstance) -> bool:
    """True when (a, b) is already in canonical order.

    Canonical order sorts by (class code, size, app code) so lookups
    are order-insensitive.
    """
    ka = (_CLASS_CODE[inst_a.app_class], inst_a.data_bytes, inst_a.code)
    kb = (_CLASS_CODE[inst_b.app_class], inst_b.data_bytes, inst_b.code)
    return ka <= kb


def query_key(
    class_a: AppClass, class_b: AppClass, size_a: int, size_b: int
) -> tuple[np.ndarray, bool]:
    """(lookup key, swapped) for a possibly non-canonical query."""
    swapped = (_CLASS_CODE[class_a], size_a) > (_CLASS_CODE[class_b], size_b)
    if swapped:
        class_a, class_b = class_b, class_a
        size_a, size_b = size_b, size_a
    key = np.array(
        [
            _CLASS_CODE[class_a],
            _CLASS_CODE[class_b],
            np.log2(size_a / GB + 1.0),
            np.log2(size_b / GB + 1.0),
        ]
    )
    return key, swapped


class ConfigDatabase:
    """Nearest-key store of best pair configurations."""

    def __init__(self, entries: Sequence[DatabaseEntry]) -> None:
        if not entries:
            raise ValueError("database needs at least one entry")
        self.entries = list(entries)
        keys = np.vstack([e.key() for e in entries])
        self._table: LookupTable[DatabaseEntry] = LookupTable().fit(keys, self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(
        self, class_a: AppClass, class_b: AppClass, size_a: int, size_b: int
    ) -> tuple[JobConfig, JobConfig, DatabaseEntry]:
        """Best known configs for a (class, size) pair description.

        Returns configs in the caller's argument order (the stored
        entry may be the swapped orientation).
        """
        key, swapped = query_key(class_a, class_b, size_a, size_b)
        entry = self._table.lookup(key)
        if swapped:
            return entry.config_b, entry.config_a, entry
        return entry.config_a, entry.config_b, entry

    def entries_for_classes(
        self, class_a: AppClass, class_b: AppClass
    ) -> list[DatabaseEntry]:
        """All entries matching a class pair (either orientation)."""
        want = {class_a, class_b}
        return [e for e in self.entries if {e.class_a, e.class_b} == want]


def training_pairs(
    instances: Sequence[AppInstance], *, include_self: bool = True
) -> list[tuple[AppInstance, AppInstance]]:
    """Unordered instance pairs in canonical orientation."""
    pairs = []
    for a, b in combinations(instances, 2):
        pairs.append((a, b) if _canonical(a, b) else (b, a))
    if include_self:
        pairs.extend((a, a) for a in instances)
    return pairs


def build_database(
    instances: Sequence[AppInstance],
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    include_self: bool = True,
    keep_sweeps: bool = False,
    executor: "SweepExecutor | None" = None,
) -> tuple[ConfigDatabase, dict[tuple[str, str], PairSweepResult]]:
    """Sweep every training pair and collect the best configurations.

    Returns the database plus (optionally) the raw sweeps, which the
    MLM-STP training-set builder reuses so the expensive grid is
    evaluated once.

    Sweeps are fanned out through ``executor`` (a fresh
    :class:`repro.parallel.SweepExecutor` honouring ``REPRO_WORKERS``
    when omitted).  Without ``keep_sweeps`` only each pair's optimum
    crosses process boundaries — the cheap path; with it the full
    metric arrays are shipped back for training-set reuse.  Either
    way the result is identical to a serial build.
    """
    from repro.parallel import SweepExecutor

    exec_ = executor if executor is not None else SweepExecutor()
    pairs = training_pairs(instances, include_self=include_self)
    entries = []
    sweeps: dict[tuple[str, str], PairSweepResult] = {}
    if keep_sweeps:
        results = exec_.sweep_pairs(pairs, node=node, constants=constants)
        bests = [
            (s.best_configs, s.best_edp) for s in results
        ]
        for (a, b), sweep in zip(pairs, results):
            sweeps[(a.label, b.label)] = sweep
    else:
        bests = [
            (s.best_configs, s.best_edp)
            for s in exec_.sweep_pairs_best(pairs, node=node, constants=constants)
        ]
    for (a, b), ((cfg_a, cfg_b), best_edp) in zip(pairs, bests):
        entries.append(
            DatabaseEntry(
                class_a=a.app_class,
                class_b=b.app_class,
                size_a=a.data_bytes,
                size_b=b.data_bytes,
                config_a=cfg_a,
                config_b=cfg_b,
                best_edp=best_edp,
                label_a=a.label,
                label_b=b.label,
            )
        )
    return ConfigDatabase(entries), sweeps
