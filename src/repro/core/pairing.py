"""The pairing decision tree (ECoST Step 2, §5 and Fig. 4/5).

The offline Fig. 5 analysis ranks class pairs by the minimum EDP they
achieve over all core partitionings: I-I is best; pairing *anything*
with an I application minimises EDP; H and C applications are the
next-best partners; M applications are always the worst partner.
ECoST distils that into a priority over the co-runner's class:

    I  >  H  ≥  C  >  M

The scheduler, asked to fill the second slot of a node currently
running a job, walks the wait queue (head-reservation respected) and
takes the highest-priority class available.

:func:`derive_priority` re-derives the ranking from sweep data rather
than hard-coding it, so the decision tree provably follows from the
reproduction's own Fig. 5 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.wait_queue import QueuedApp, WaitQueue
from repro.workloads.base import AppClass

#: Default co-runner priority (higher pairs first), from Fig. 5.
CLASS_PRIORITY: dict[AppClass, int] = {
    AppClass.IO: 3,
    AppClass.HYBRID: 2,
    AppClass.COMPUTE: 1,
    AppClass.MEMORY: 0,
}


def priority_of(cls: AppClass, priority: Mapping[AppClass, int] | None = None) -> int:
    table = CLASS_PRIORITY if priority is None else priority
    return table[cls]


def derive_priority(
    pair_min_edp: Mapping[tuple[AppClass, AppClass], float]
) -> dict[AppClass, int]:
    """Derive the co-runner priority from Fig. 5-style data.

    ``pair_min_edp`` maps unordered class pairs to their best (minimum)
    EDP.  A class's merit is its average rank as a partner: for every
    running class r we sort candidate partners by the pair's EDP, and
    classes that more often appear early earn higher priority.
    """
    classes = sorted({c for pair in pair_min_edp for c in pair}, key=lambda c: c.value)
    if not classes:
        raise ValueError("empty pair EDP table")

    def edp_for(a: AppClass, b: AppClass) -> float:
        key = (a, b) if (a, b) in pair_min_edp else (b, a)
        try:
            return pair_min_edp[key]
        except KeyError:
            raise KeyError(f"missing pair ({a}, {b}) in EDP table") from None

    scores = {c: 0.0 for c in classes}
    for running in classes:
        ranked = sorted(classes, key=lambda p: edp_for(running, p))
        for rank, partner in enumerate(ranked):
            scores[partner] += len(classes) - 1 - rank
    order = sorted(classes, key=lambda c: scores[c])
    return {c: i for i, c in enumerate(order)}


@dataclass
class PairingPolicy:
    """Selects which queued application to co-locate next (Fig. 4).

    The decision tree: given the class of the running application,
    prefer an I-class partner, then H, then C, then M — restricted by
    the wait queue's head reservation.  When the node is empty the
    head of the queue starts (its reservation is what guarantees
    progress).
    """

    priority: dict[AppClass, int] = field(
        default_factory=lambda: dict(CLASS_PRIORITY)
    )

    def choose_partner(
        self,
        queue: WaitQueue,
        running_class: AppClass | None,
        *,
        allow_leap: bool = True,
    ) -> QueuedApp | None:
        """Pop the queued app to co-locate with a ``running_class`` job.

        With an empty node (``running_class is None``) the head is
        taken unconditionally — reservations first.
        """
        if running_class is None:
            return queue.pop_head() if len(queue) else None
        return queue.select(
            lambda qa: float(self.priority[qa.app_class]),
            allow_leap=allow_leap,
        )

    def rank_classes(self) -> Sequence[AppClass]:
        """Classes from most- to least-preferred partner."""
        return sorted(self.priority, key=lambda c: -self.priority[c])
