"""The online ECoST controller (Fig. 4), wired into the cluster engine.

Drives a :class:`~repro.mapreduce.engine.ClusterEngine` as its
scheduler: incoming applications are profiled for a learning period
and classified, wait in the reservation FIFO, are paired onto nodes by
the class-priority decision tree, and receive self-tuned
configurations from an STP backend.  Two applications share each node
in steady state; when one finishes, the freed slot is refilled from
the queue (§5: "several other applications are waiting in the wait
queue to be paired as soon as any one of the two applications
finishes").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.classify import AppClassifier, NearestCentroidClassifier
from repro.analysis.features import PROFILING_CONFIG, build_feature_matrix
from repro.core.database import build_database
from repro.core.pairing import PairingPolicy
from repro.core.stp import (
    AppDescriptor,
    MLMSTP,
    SelfTuningPredictor,
    build_training_dataset,
)
from repro.core.wait_queue import QueuedApp, WaitQueue
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.engine import ClusterEngine, NodeEngine
from repro.mapreduce.job import JobResult, JobSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.costmodel import standalone_metrics_scalar
from repro.telemetry.profiling import profile_features
from repro.telemetry.tracing import NULL_TRACER
from repro.utils.rng import SeedLike
from repro.workloads.base import AppInstance
from repro.workloads.registry import TRAINING_APPS, instances_for


@dataclass
class _Arrival:
    time: float
    instance: AppInstance
    queued: bool = False


class ECoSTController:
    """Classify → queue → pair → self-tune → place."""

    def __init__(
        self,
        cluster: ClusterEngine,
        stp: SelfTuningPredictor,
        classifier: AppClassifier,
        *,
        pairing: PairingPolicy | None = None,
        node: NodeSpec = ATOM_C2758,
        constants: SimConstants = DEFAULT_CONSTANTS,
        profiling_seed: SeedLike = 0,
    ) -> None:
        self.cluster = cluster
        self.stp = stp
        self.classifier = classifier
        self.pairing = pairing or PairingPolicy()
        self.node = node
        self.constants = constants
        self.profiling_seed = profiling_seed
        self.queue = WaitQueue()
        self._arrivals: list[_Arrival] = []
        self._features_memo: dict[AppInstance, dict[str, float]] = {}
        #: Memoized per-(node spec, application) solo-EDP scores used to
        #: rank empty nodes on heterogeneous rosters.
        self._class_edp_memo: dict[tuple[int, AppInstance], float] = {}
        self.decisions: list[str] = []  # human-readable scheduling log
        #: Nodes the fault layer reported as flapping — never scheduled.
        self.blacklisted: set[int] = set()
        #: How many times the learning period was re-entered after the
        #: surviving-node profile shifted (crash/recovery).
        self.relearn_count = 0
        #: Shared with the cluster: controller decisions land on pid 0.
        self.tracer = getattr(cluster, "tracer", NULL_TRACER)
        #: Online self-tuning seam: predictors that expose completion
        #: hooks (``repro.online``) receive every pairing decision and
        #: job completion.  Plain STP backends leave this None and the
        #: scheduling path is byte-identical to the offline controller.
        self._online = stp if callable(getattr(stp, "on_complete", None)) else None
        self._observed_results = 0
        cluster.scheduler = self._schedule

    # ------------------------------------------------------------ intake
    def submit(
        self,
        instance: AppInstance,
        arrival_time: float = 0.0,
        *,
        notify: bool = True,
    ) -> None:
        """Register an incoming application.

        ``notify=False`` skips scheduling the wake-up event: streaming
        front ends (``repro.service``) that invoke the scheduler
        themselves via :meth:`ClusterEngine.wake_now` use it to keep
        the event order identical to a batch run's.
        """
        if arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        self._arrivals.append(_Arrival(time=arrival_time, instance=instance))
        if notify:
            self.cluster.notify_at(arrival_time)

    def _features(self, instance: AppInstance) -> dict[str, float]:
        """Learning-period features, profiled once per application.

        ``profile_features`` is deterministic for a given
        ``(instance, config, seed)``, and the scheduler re-derives a
        running job's descriptor on every partner-fill round — without
        memoization a steady-state stream re-profiles the same
        application hundreds of times.
        """
        feats = self._features_memo.get(instance)
        if feats is None:
            feats = profile_features(
                instance, PROFILING_CONFIG,
                node=self.node, constants=self.constants,
                seed=self.profiling_seed,
            )
            self._features_memo[instance] = feats
        return feats

    def _classify(self, instance: AppInstance) -> QueuedApp:
        """Step 1: learning-period profiling + classification."""
        newly_profiled = instance not in self._features_memo
        feats = self._features(instance)
        cls = self.classifier.classify(feats)
        if self.tracer.enabled:
            self.tracer.instant(
                "classify",
                "controller",
                self.cluster.now,
                args={
                    "app": instance.label,
                    "class": cls.value,
                    "learning_period": newly_profiled,
                },
            )
        return QueuedApp(
            instance=instance,
            app_class=cls,
            arrival_time=self.cluster.now,
            features=dict(feats),
        )

    def _descriptor(self, qa: QueuedApp) -> AppDescriptor:
        return AppDescriptor(
            features=qa.features,
            app_class=qa.app_class,
            data_bytes=qa.instance.data_bytes,
        )

    def _running_descriptor(self, engine: NodeEngine) -> AppDescriptor | None:
        """Descriptor of the node's single running job.

        Returns None when the running list is empty — the fault layer
        can kill or blacklist a node's job between the schedulability
        check and the descriptor build, and that candidate must be
        skipped rather than crash the scheduler.
        """
        if not engine.running:
            return None
        running = engine.running[0]
        feats = self._features(running.spec.instance)
        return AppDescriptor(
            features=feats,
            app_class=self.classifier.classify(feats),
            data_bytes=running.spec.instance.data_bytes,
        )

    # ------------------------------------------------------- degradation
    def _schedulable(self, engine: NodeEngine) -> bool:
        return engine.alive and engine.node_id not in self.blacklisted

    def on_node_blacklisted(self, node_id: int, t: float) -> None:
        """The fault layer declared a node flapping: stop using it."""
        self.blacklisted.add(node_id)
        self.decisions.append(
            f"t={t:8.1f}s node{node_id}: blacklisted (flapping)"
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "blacklist", "controller", t, args={"node": node_id}
            )

    def on_cluster_change(self, t: float, alive_node_ids: Sequence[int]) -> None:
        """The surviving-node profile shifted (crash or recovery).

        The learning-period features were measured against the old
        cluster shape, so the controller re-enters the learning period:
        the memoized profiles are dropped and every queued or future
        application is re-profiled before its next pairing decision.
        When the STP backend can relearn (``repro.online``), its model
        state is refit too — the log below used to claim a relearn
        while the model silently stayed stale.
        """
        self._features_memo.clear()
        self.relearn_count += 1
        refit = getattr(self.stp, "refit", None)
        refitted = callable(refit) and bool(refit(t=t, reason="cluster-change"))
        self.decisions.append(
            f"t={t:8.1f}s cluster: {len(alive_node_ids)} node(s) live; "
            f"re-entering learning period"
            + (" (STP refit)" if refitted else "")
        )
        if self.tracer.enabled:
            args = {"alive_nodes": len(alive_node_ids)}
            if refitted:
                args["stp_refit"] = True
            self.tracer.instant("relearn", "controller", t, args=args)

    # --------------------------------------------------------- scheduling
    def _class_edp(self, spec: NodeSpec, qa: QueuedApp) -> float:
        """Predicted solo EDP of ``qa`` at its tuned config on ``spec``.

        The placement score for heterogeneous rosters: empty nodes are
        filled in ascending order of the queue head's EDP on each
        node's class, so an energy-hungry Xeon only takes work its
        speed actually pays for.  Memoized per (spec, application) —
        the same handful of applications recur all run.
        """
        key = (id(spec), qa.instance)
        hit = self._class_edp_memo.get(key)
        if hit is None:
            d = self._descriptor(qa)
            cfg, _ = self.stp.predict_configs(d, d)
            cfg = self._cap_mappers(cfg, spec.n_cores - 1)
            hit = standalone_metrics_scalar(
                qa.instance.profile,
                qa.instance.data_bytes,
                cfg.frequency,
                cfg.block_size,
                cfg.n_mappers,
                node=spec,
                constants=self.constants,
            ).edp
            self._class_edp_memo[key] = hit
        return hit

    def _empty_node_order(self, cluster: ClusterEngine) -> list[NodeEngine]:
        """Node visit order for the empty-node pairing loop.

        Homogeneous clusters keep the id-order list unchanged (the
        byte-identical legacy path).  Heterogeneous clusters rank nodes
        by the queue head's per-class EDP, ties broken by node id.
        """
        if not getattr(cluster, "heterogeneous", False):
            return cluster.nodes
        head = self.queue.head
        if head is None:
            return cluster.nodes
        return sorted(
            cluster.nodes,
            key=lambda e: (self._class_edp(e.node, head), e.node_id),
        )

    def _cap_mappers(self, cfg: JobConfig, free: int) -> JobConfig:
        if cfg.n_mappers <= free:
            return cfg
        return JobConfig(
            frequency=cfg.frequency, block_size=cfg.block_size, n_mappers=free
        )

    def _place(self, qa: QueuedApp, cfg: JobConfig, node_id: int, t: float) -> JobSpec:
        spec = JobSpec(instance=qa.instance, config=cfg, submit_time=qa.arrival_time)
        self.cluster.pending.append(spec)
        self.cluster.place(spec, node_id)
        self.decisions.append(
            f"t={t:8.1f}s node{node_id}: start {qa.instance.label} [{qa.app_class}] "
            f"as {cfg.label}"
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "place",
                "controller",
                t,
                args={
                    "app": qa.instance.label,
                    "class": qa.app_class.value,
                    "config": cfg.label,
                    "node": node_id,
                    "waited_s": t - qa.arrival_time,
                },
            )
        return spec

    def notify_completions(self) -> None:
        """Feed newly completed jobs to the online tuner.

        No-op for plain STP backends.  Safe to call from several
        harvest paths (the scheduler itself and ``repro.service``):
        the cursor plus the tuner's idempotent completion matching
        make double delivery harmless.
        """
        if self._online is None:
            return
        results = self.cluster.results
        n = len(results)
        for result in results[self._observed_results : n]:
            self._online.on_complete(result)
        self._observed_results = n

    def _note_pairing(
        self,
        t: float,
        run_desc: AppDescriptor,
        run_spec: JobSpec,
        partner_desc: AppDescriptor,
        partner_spec: JobSpec,
    ) -> None:
        self._online.note_pairing(
            t=t,
            desc_a=run_desc,
            desc_b=partner_desc,
            inst_a=run_spec.instance,
            inst_b=partner_spec.instance,
            job_a=run_spec.job_id,
            job_b=partner_spec.job_id,
        )

    def _schedule(self, cluster: ClusterEngine, t: float) -> None:
        # Absorb completions first so the online tuner (when present)
        # is as current as possible before new pairing decisions.
        if self._online is not None:
            self.notify_completions()
        # Move due arrivals through classification into the wait queue.
        for arr in self._arrivals:
            if not arr.queued and arr.time <= t + 1e-9:
                arr.queued = True
                self.queue.push(self._classify(arr.instance))

        progress = True
        while progress and len(self.queue):
            progress = False
            # Fill partner slots first (pairing is the point of ECoST),
            # then start pairs on empty nodes.
            for engine in cluster.nodes:
                if len(self.queue) == 0:
                    return
                if not self._schedulable(engine):
                    continue
                if len(engine.running) == 1 and engine.free_cores >= 1:
                    run_desc = self._running_descriptor(engine)
                    if run_desc is None:
                        # The job vanished under us (crash/blacklist
                        # race) — skip this candidate.
                        continue
                    run_spec = engine.running[0].spec
                    partner = self.pairing.choose_partner(
                        self.queue, run_desc.app_class, allow_leap=True
                    )
                    if partner is None:
                        continue
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "pair (partner fill)",
                            "controller",
                            t,
                            args={
                                "node": engine.node_id,
                                "running_class": run_desc.app_class.value,
                                "partner": partner.instance.label,
                                "partner_class": partner.app_class.value,
                            },
                        )
                    # The running job's knobs are already committed; the
                    # newcomer takes its side of the predicted pair
                    # configuration, capped to the free cores.
                    partner_desc = self._descriptor(partner)
                    _cfg_run, cfg_new = self.stp.predict_configs(
                        run_desc, partner_desc
                    )
                    cfg_new = self._cap_mappers(cfg_new, engine.free_cores)
                    new_spec = self._place(partner, cfg_new, engine.node_id, t)
                    if self._online is not None:
                        self._note_pairing(
                            t, run_desc, run_spec, partner_desc, new_spec
                        )
                    progress = True
            for engine in self._empty_node_order(cluster):
                if len(self.queue) == 0:
                    return
                if not self._schedulable(engine):
                    continue
                if not engine.running:
                    head = self.pairing.choose_partner(self.queue, None)
                    if head is None:
                        continue
                    partner = self.pairing.choose_partner(
                        self.queue, head.app_class, allow_leap=True
                    )
                    if partner is not None:
                        if self.tracer.enabled:
                            self.tracer.instant(
                                "pair (empty node)",
                                "controller",
                                t,
                                args={
                                    "node": engine.node_id,
                                    "head": head.instance.label,
                                    "head_class": head.app_class.value,
                                    "partner": partner.instance.label,
                                    "partner_class": partner.app_class.value,
                                },
                            )
                        head_desc = self._descriptor(head)
                        partner_desc = self._descriptor(partner)
                        cfg_a, cfg_b = self.stp.predict_configs(
                            head_desc, partner_desc
                        )
                        # Cap against the *engine's* spec: on a mixed
                        # roster an empty Xeon offers more headroom than
                        # the controller's representative node.
                        cfg_a = self._cap_mappers(cfg_a, engine.node.n_cores - 1)
                        head_spec = self._place(head, cfg_a, engine.node_id, t)
                        cfg_b = self._cap_mappers(cfg_b, engine.free_cores)
                        partner_spec = self._place(
                            partner, cfg_b, engine.node_id, t
                        )
                        if self._online is not None:
                            self._note_pairing(
                                t, head_desc, head_spec, partner_desc, partner_spec
                            )
                    else:
                        # Last lonely job: tune it as a pair with itself
                        # (it may later receive a partner anyway).
                        d = self._descriptor(head)
                        cfg_a, _ = self.stp.predict_configs(d, d)
                        self._place(head, cfg_a, engine.node_id, t)
                    progress = True

    # -------------------------------------------------------------- runs
    def run(self) -> list[JobResult]:
        """Run the cluster until every submitted application finishes."""
        results = self.cluster.run()
        if len(self.queue) or any(not a.queued for a in self._arrivals):
            raise RuntimeError("ECoST finished with applications still queued")
        # Trailing completions (after the last scheduler wake-up) still
        # count as telemetry for the online tuner.
        self.notify_completions()
        return results

    # ---------------------------------------------------------- factories
    @classmethod
    def default(
        cls,
        cluster: ClusterEngine,
        *,
        model_kind: str = "reptree",
        node: NodeSpec = ATOM_C2758,
        constants: SimConstants = DEFAULT_CONSTANTS,
        seed: SeedLike = 0,
    ) -> "ECoSTController":
        """Build the full pipeline from the training applications.

        Constructs the configuration database and MLM-STP from sweeps
        of the 5 known training applications and fits the
        nearest-centroid classifier on their feature matrix — the
        complete offline Step 0 of Figs. 6/7.
        """
        training = instances_for(TRAINING_APPS)
        _db, sweeps = build_database(
            training, node=node, constants=constants, keep_sweeps=True
        )
        dataset = build_training_dataset(
            training, node=node, constants=constants, sweeps=sweeps, seed=seed
        )
        stp = MLMSTP(model_kind, node=node).fit(dataset)
        fm = build_feature_matrix(training, node=node, constants=constants, seed=seed)
        classifier = NearestCentroidClassifier().fit(
            fm, [i.app_class for i in training]
        )
        return cls(
            cluster, stp, classifier, node=node, constants=constants, profiling_seed=seed
        )
