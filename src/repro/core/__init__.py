"""ECoST: the paper's primary contribution (§5-§6).

The Energy-efficient Co-locating and Self-Tuning pipeline:

1. **Classify** each unknown incoming application from a learning-
   period counter profile (:mod:`repro.analysis.classify`).
2. **Queue** it in a FIFO wait queue with head reservation and
   small-job leap-forward (:mod:`repro.core.wait_queue`).
3. **Pair** it with the application already running on a node using
   the class-priority decision tree distilled from the Fig. 5 offline
   analysis (:mod:`repro.core.pairing`).
4. **Self-tune** the pair's six knobs (frequency, HDFS block size,
   mapper count — per application) with a self-tuning prediction
   technique: the lookup table LkT-STP or a machine-learning model
   MLM-STP (:mod:`repro.core.stp`), both backed by the configuration
   database built offline from the *training* applications
   (:mod:`repro.core.database`).

:class:`~repro.core.controller.ECoSTController` wires all of it into
the discrete-event cluster engine as an online scheduler.
"""

from repro.core.wait_queue import WaitQueue, QueuedApp
from repro.core.pairing import PairingPolicy, CLASS_PRIORITY, priority_of
from repro.core.database import ConfigDatabase, DatabaseEntry, build_database
from repro.core.stp import (
    LkTSTP,
    MLMSTP,
    SelfTuningPredictor,
    TrainingDataset,
    build_training_dataset,
)
from repro.core.controller import ECoSTController

__all__ = [
    "WaitQueue",
    "QueuedApp",
    "PairingPolicy",
    "CLASS_PRIORITY",
    "priority_of",
    "ConfigDatabase",
    "DatabaseEntry",
    "build_database",
    "SelfTuningPredictor",
    "LkTSTP",
    "MLMSTP",
    "TrainingDataset",
    "build_training_dataset",
    "ECoSTController",
]
