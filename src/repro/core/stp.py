"""Self-tuning prediction techniques (§6.4): LkT-STP and MLM-STP.

Both techniques answer the same online question: *given two classified
applications about to be co-located, which six knob settings
(frequency, HDFS block size, mapper count — per application) minimise
EDP?*

* **LkT-STP** (Fig. 6): scan the offline configuration database for
  the training pair that best resembles the incoming pair (by class
  and input size) and reuse its stored optimum.
* **MLM-STP** (Fig. 7): select the learned EDP model for the pair's
  class combination, evaluate it over *all* permutations of the
  tuning parameters (Step 4), and take the arg-min configuration.

The learned models (LR / REPTree / MLP) are trained per class pair on
rows from the training-pair sweeps: features of both applications,
their input sizes, the six knobs → EDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.core.database import ConfigDatabase, training_pairs
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.ml.base import Regressor
from repro.ml.linreg import LinearRegression
from repro.ml.mlp import MLPRegressor
from repro.ml.reptree import REPTree
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig, pair_config_grid
from repro.model.sweep import PairSweepResult
from repro.telemetry.profiling import REDUCED_FEATURE_NAMES, profile_features, reduced_vector
from repro.analysis.features import PROFILING_CONFIG
from repro.utils.rng import SeedLike, rng_from
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppClass, AppInstance

_CLASS_CODE = {AppClass.COMPUTE: 0, AppClass.HYBRID: 1, AppClass.IO: 2, AppClass.MEMORY: 3}


@dataclass(frozen=True)
class AppDescriptor:
    """What STP knows about one application at scheduling time."""

    features: Mapping[str, float]  # 14-feature profiling dict
    app_class: AppClass
    data_bytes: int

    def reduced(self) -> np.ndarray:
        return reduced_vector(dict(self.features))


class SelfTuningPredictor(Protocol):
    """Interface shared by LkT-STP and MLM-STP."""

    def predict_configs(
        self, a: AppDescriptor, b: AppDescriptor
    ) -> tuple[JobConfig, JobConfig]: ...


def describe_instance(
    instance: AppInstance,
    app_class: AppClass | None = None,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: SeedLike = 0,
) -> AppDescriptor:
    """Profile an instance (learning period) into an STP descriptor.

    ``app_class`` defaults to the instance's true class; pass the
    classifier's output to study the end-to-end pipeline including
    classification error.
    """
    feats = profile_features(
        instance, PROFILING_CONFIG, node=node, constants=constants, seed=seed
    )
    return AppDescriptor(
        features=feats,
        app_class=app_class if app_class is not None else instance.app_class,
        data_bytes=instance.data_bytes,
    )


# --------------------------------------------------------------- LkT-STP
class LkTSTP:
    """Lookup-table self-tuning prediction (Fig. 6).

    Implements the paper's literal procedure: classify the incoming
    pair, then "scan the database to extract the tuning parameters
    that provide the minimum EDP for the co-located applications" —
    i.e. among the stored entries matching the class pair, reuse the
    configuration of the entry with the smallest recorded EDP.  This
    is exactly the inflexibility §7.2 criticises: the minimum-EDP
    entry is typically a small-input pair, and its block/mapper
    settings transfer imperfectly to other input sizes.

    ``size_aware=True`` switches to nearest-(class, size) lookup — a
    strictly better variant exercised by the ablation benchmarks.
    """

    def __init__(self, database: ConfigDatabase, *, size_aware: bool = False) -> None:
        self.database = database
        self.size_aware = size_aware

    @staticmethod
    def _oriented_distance(entry, a: AppDescriptor, b: AppDescriptor) -> tuple[float, bool]:
        """(log-space size distance, swapped) of an entry vs. a query.

        When the entry's two classes differ, the orientation is fixed
        by matching classes; when they are equal, both orientations
        are considered and the closer one wins.
        """
        import math

        la, lb = math.log(a.data_bytes), math.log(b.data_bytes)
        ea, eb = math.log(entry.size_a), math.log(entry.size_b)
        fwd = abs(ea - la) + abs(eb - lb)
        rev = abs(ea - lb) + abs(eb - la)
        if entry.class_a != entry.class_b:
            if (entry.class_a, entry.class_b) == (a.app_class, b.app_class):
                return fwd, False
            return rev, True
        return (fwd, False) if fwd <= rev else (rev, True)

    def predict_configs(
        self, a: AppDescriptor, b: AppDescriptor
    ) -> tuple[JobConfig, JobConfig]:
        if self.size_aware:
            cfg_a, cfg_b, _entry = self.database.lookup(
                a.app_class, b.app_class, a.data_bytes, b.data_bytes
            )
            return cfg_a, cfg_b
        entries = self.database.entries_for_classes(a.app_class, b.app_class)
        if not entries:
            # Unseen class combination: fall back to the nearest key.
            cfg_a, cfg_b, _entry = self.database.lookup(
                a.app_class, b.app_class, a.data_bytes, b.data_bytes
            )
            return cfg_a, cfg_b
        scored = [(self._oriented_distance(e, a, b), e) for e in entries]
        dmin = min(d for (d, _sw), _e in scored)
        nearest = [((d, sw), e) for (d, sw), e in scored if d <= dmin + 1e-9]
        (_d, swapped), best = min(nearest, key=lambda it: it[1].best_edp)
        if swapped:
            return best.config_b, best.config_a
        return best.config_a, best.config_b


# --------------------------------------------------------------- MLM-STP
def _canonical_order(a: AppDescriptor, b: AppDescriptor) -> bool:
    ka = (_CLASS_CODE[a.app_class], a.data_bytes)
    kb = (_CLASS_CODE[b.app_class], b.data_bytes)
    return ka <= kb


def _row_block(
    feat_a: np.ndarray,
    size_a: int,
    feat_b: np.ndarray,
    size_b: int,
    f1, b1, m1, f2, b2, m2,
) -> np.ndarray:
    """Assemble model-input rows for arrays of configurations.

    Knobs are expressed in human scale (GHz, log2 MB, mappers) so the
    learned models see comparable magnitudes.
    """
    n = len(np.atleast_1d(f1))
    fa = np.tile(feat_a, (n, 1))
    fb = np.tile(feat_b, (n, 1))
    cols = [
        fa,
        np.full((n, 1), np.log2(size_a / GB + 1.0)),
        fb,
        np.full((n, 1), np.log2(size_b / GB + 1.0)),
        (np.asarray(f1, dtype=float) / GHZ)[:, None],
        np.log2(np.asarray(b1, dtype=float) / MB)[:, None],
        np.asarray(m1, dtype=float)[:, None],
        (np.asarray(f2, dtype=float) / GHZ)[:, None],
        np.log2(np.asarray(b2, dtype=float) / MB)[:, None],
        np.asarray(m2, dtype=float)[:, None],
    ]
    return np.hstack(cols)


#: Number of model-input columns (2×7 features + 2 sizes + 6 knobs).
N_MODEL_FEATURES = 2 * len(REDUCED_FEATURE_NAMES) + 2 + 6


def _validate_edp_targets(y: np.ndarray, context: str) -> None:
    """EDP targets must survive the log transform.

    A non-positive or non-finite EDP row would silently become
    ``-inf``/``nan`` under ``np.log`` and poison the fitted model far
    from the bad row; fail fast and name the offender instead.
    """
    y = np.asarray(y, dtype=float)
    bad = np.flatnonzero(~np.isfinite(y) | (y <= 0.0))
    if bad.size:
        i = int(bad[0])
        raise ValueError(
            f"{context}: EDP targets must be finite and > 0 for log-space "
            f"training; row {i} has y={y[i]!r} "
            f"({bad.size} offending row(s) in total)"
        )


@dataclass
class TrainingDataset:
    """Per-class-pair training rows for the MLM models."""

    X: np.ndarray
    y: np.ndarray
    pair_codes: np.ndarray  # (n,) canonical "C-H"-style strings
    #: Reduced feature vectors of the training applications — the
    #: manifold unknown-app features are projected onto at prediction.
    train_features: np.ndarray = None  # type: ignore[assignment]
    #: Data size (bytes) of each training-feature row; projection
    #: prefers same-size rows so (features, size) stays on-manifold.
    train_sizes: np.ndarray = None  # type: ignore[assignment]

    def subset(self, pair_code: str) -> tuple[np.ndarray, np.ndarray]:
        mask = self.pair_codes == pair_code
        return self.X[mask], self.y[mask]

    @property
    def class_pairs(self) -> list[str]:
        return sorted(set(self.pair_codes.tolist()))


def pair_code(class_a: AppClass, class_b: AppClass) -> str:
    """Canonical class-pair code, e.g. ``"C-M"``."""
    a, b = sorted((class_a.value, class_b.value))
    return f"{a}-{b}"


def build_training_dataset(
    instances: Sequence[AppInstance],
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    sweeps: Mapping[tuple[str, str], PairSweepResult] | None = None,
    rows_per_pair: int = 400,
    include_self: bool = True,
    seed: SeedLike = 0,
    executor: "SweepExecutor | None" = None,
) -> TrainingDataset:
    """Sweep (or reuse sweeps of) training pairs and emit model rows.

    Each pair contributes ``rows_per_pair`` grid points sampled without
    replacement — always including the optimum, so models can learn
    where the minimum lives.  Pairs not covered by ``sweeps`` are swept
    through ``executor`` (default: a fresh ``SweepExecutor`` honouring
    ``REPRO_WORKERS``) in one fan-out batch.
    """
    from repro.parallel import SweepExecutor

    rng = rng_from(seed)
    descriptors = {
        inst.label: describe_instance(inst, node=node, constants=constants, seed=seed)
        for inst in instances
    }
    pairs = training_pairs(instances, include_self=include_self)
    missing = [
        (a, b) for a, b in pairs if (sweeps or {}).get((a.label, b.label)) is None
    ]
    computed: dict[tuple[str, str], PairSweepResult] = {}
    if missing:
        exec_ = executor if executor is not None else SweepExecutor()
        for (a, b), sweep in zip(
            missing, exec_.sweep_pairs(missing, node=node, constants=constants)
        ):
            computed[(a.label, b.label)] = sweep
    X_rows, y_rows, codes = [], [], []
    for a, b in pairs:
        key = (a.label, b.label)
        sweep = (sweeps or {}).get(key)
        if sweep is None:
            sweep = computed[key]
        n = len(sweep.edp)
        take = min(rows_per_pair, n)
        idx = rng.choice(n, size=take, replace=False)
        if sweep.best_index not in idx:
            idx[0] = sweep.best_index
        da, db = descriptors[a.label], descriptors[b.label]
        rows = _row_block(
            da.reduced(), a.data_bytes, db.reduced(), b.data_bytes,
            sweep.freq_a[idx], sweep.block_a[idx], sweep.mappers_a[idx],
            sweep.freq_b[idx], sweep.block_b[idx], sweep.mappers_b[idx],
        )
        X_rows.append(rows)
        y_rows.append(sweep.edp[idx])
        codes.extend([pair_code(a.app_class, b.app_class)] * take)
    return TrainingDataset(
        X=np.vstack(X_rows),
        y=np.concatenate(y_rows),
        pair_codes=np.array(codes),
        train_features=np.vstack([d.reduced() for d in descriptors.values()]),
        train_sizes=np.array([d.data_bytes for d in descriptors.values()], dtype=float),
    )


ModelFactory = Callable[[], Regressor]


def _make_lr() -> LinearRegression:
    return LinearRegression()


def _make_reptree() -> REPTree:
    return REPTree(seed=0)


def _make_mlp() -> MLPRegressor:
    # Targets are log-transformed by the STP pipeline itself.
    return MLPRegressor(epochs=250, batch_size=256, log_target=False, seed=0)


#: The paper's three MLM model families (§6.3).  Entries are named
#: module-level functions (not lambdas) so fitted STP objects pickle.
MODEL_FACTORIES: dict[str, ModelFactory] = {
    "lr": _make_lr,
    "reptree": _make_reptree,
    "mlp": _make_mlp,
}


def basin_select(
    pred_log: np.ndarray,
    knob_matrix: np.ndarray,
    *,
    eps: float = 0.05,
) -> int:
    """Robust arg-min over a predicted (log-)EDP surface.

    Rather than taking the raw arg-min — which rewards the model\'s most
    optimistic single point (the optimiser\'s curse) — select the most
    *central* configuration of the low-EDP basin: all grid points whose
    prediction lies within ``eps`` (log space ≈ relative) of the
    minimum, reduced to the one nearest the basin\'s knob-median.  On
    piecewise-constant predictors (trees) this avoids arbitrary
    tie-breaking inside wide leaves.
    """
    pred_log = np.asarray(pred_log, dtype=float)
    basin = np.flatnonzero(pred_log <= pred_log.min() + eps)
    med = np.median(knob_matrix[basin], axis=0)
    span = knob_matrix.max(axis=0) - knob_matrix.min(axis=0)
    span = np.where(span < 1e-12, 1.0, span)
    d = np.linalg.norm((knob_matrix[basin] - med) / span, axis=1)
    return int(basin[np.argmin(d)])


class MLMSTP:
    """Machine-learning-model self-tuning prediction (Fig. 7).

    Three reproduction-specific robustness measures (each documented in
    DESIGN.md):

    * all models are trained on **log EDP** (EDP spans orders of
      magnitude; the selection arg-min is invariant to the monotone
      transform);
    * unknown applications\' features are **projected onto the training
      manifold** — replaced by the most-resembling training
      application\'s features — which is the paper\'s own §6.4 step
      ("the classifier chooses the application in the database that
      best resembles the testing applications");
    * the final configuration comes from :func:`basin_select`, not a
      raw arg-min.

    ``scope`` chooses between one global model (default — lets the
    model interpolate across class boundaries) and the paper\'s
    per-class-pair models (``scope="per-class"``).
    """

    def __init__(
        self,
        model_kind: str | ModelFactory = "reptree",
        *,
        node: NodeSpec = ATOM_C2758,
        scope: str = "global",
        project_features: bool = True,
        basin_eps: float = 0.05,
    ) -> None:
        if callable(model_kind):
            self._factory: ModelFactory = model_kind
            self.model_kind = getattr(model_kind, "__name__", "custom")
        else:
            try:
                self._factory = MODEL_FACTORIES[model_kind]
            except KeyError:
                raise ValueError(
                    f"unknown model kind {model_kind!r}; "
                    f"valid: {sorted(MODEL_FACTORIES)}"
                ) from None
            self.model_kind = model_kind
        if scope not in ("global", "per-class"):
            raise ValueError(f"scope must be 'global' or 'per-class', got {scope!r}")
        self.node = node
        self.scope = scope
        self.project_features = project_features
        self.basin_eps = basin_eps
        self.models_: dict[str, Regressor] = {}
        self.global_model_: Regressor | None = None
        self.train_features_: np.ndarray | None = None
        self.train_sizes_: np.ndarray | None = None

    def fit(self, dataset: TrainingDataset) -> "MLMSTP":
        """Train on log-EDP: per class pair and/or the global model."""
        _validate_edp_targets(dataset.y, "MLMSTP.fit")
        y_log = np.log(dataset.y)
        if self.scope == "per-class":
            for code in dataset.class_pairs:
                X, y = dataset.subset(code)
                self.models_[code] = self._factory().fit(X, np.log(y))
        self.global_model_ = self._factory().fit(dataset.X, y_log)
        self.train_features_ = dataset.train_features
        self.train_sizes_ = dataset.train_sizes
        return self

    def _model_for(self, code: str) -> Regressor:
        if self.scope == "per-class" and code in self.models_:
            return self.models_[code]
        if self.global_model_ is None:
            raise RuntimeError("MLM-STP is not fitted")
        return self.global_model_

    def _project(self, feat: np.ndarray, size: float | None = None) -> np.ndarray:
        """Replace features by the nearest training application\'s.

        When ``size`` is given, candidates are restricted to training
        rows of the same input size (if any exist) so the projected
        (features, size) point lies exactly on the training manifold —
        trees route such points like the lookup table would.
        """
        if not self.project_features or self.train_features_ is None:
            return feat
        train = self.train_features_
        sizes = self.train_sizes_
        idx = np.arange(len(train))
        if size is not None and sizes is not None:
            same = np.flatnonzero(np.isclose(sizes, size, rtol=1e-6))
            if same.size:
                idx = same
        cand = train[idx]
        span = train.max(axis=0) - train.min(axis=0)
        span = np.where(span < 1e-12, 1.0, span)
        d = np.linalg.norm((cand - feat) / span, axis=1)
        return cand[int(np.argmin(d))]

    def predict_configs(
        self, a: AppDescriptor, b: AppDescriptor
    ) -> tuple[JobConfig, JobConfig]:
        """Step 3-4 of Fig. 7: pick the model, arg-min over the grid."""
        if self.global_model_ is None:
            raise RuntimeError("MLM-STP is not fitted; call fit() first")
        swapped = not _canonical_order(a, b)
        ca, cb = (b, a) if swapped else (a, b)
        f1, b1, m1, f2, b2, m2 = pair_config_grid(self.node)
        X = _row_block(
            self._project(ca.reduced(), ca.data_bytes), ca.data_bytes,
            self._project(cb.reduced(), cb.data_bytes), cb.data_bytes,
            f1, b1, m1, f2, b2, m2,
        )
        model = self._model_for(pair_code(ca.app_class, cb.app_class))
        pred = np.asarray(model.predict(X))
        knobs = np.column_stack(
            [f1 / GHZ, np.log2(b1 / MB), m1, f2 / GHZ, np.log2(b2 / MB), m2]
        )
        i = basin_select(pred, knobs, eps=self.basin_eps)
        cfg_a = JobConfig(frequency=float(f1[i]), block_size=int(b1[i]), n_mappers=int(m1[i]))
        cfg_b = JobConfig(frequency=float(f2[i]), block_size=int(b2[i]), n_mappers=int(m2[i]))
        return (cfg_b, cfg_a) if swapped else (cfg_a, cfg_b)

    def predict_single_config(self, a: AppDescriptor) -> JobConfig:
        """Tune a standalone application (the PTM policy of §8).

        Uses the model's pair grid with the application paired against
        itself and returns the first-slot configuration restricted to
        the standalone mapper range.
        """
        cfg_a, _cfg_b = self.predict_configs(a, a)
        return cfg_a


class SoloSTP:
    """Self-tuning of *standalone* applications (PTM in §8).

    Same recipe as MLM-STP but trained on the 160-configuration solo
    sweeps of the training instances, so the predicted mapper count
    can use the full core range (a solo job may take all 8 cores).
    """

    def __init__(
        self,
        model_kind: str | ModelFactory = "reptree",
        *,
        node: NodeSpec = ATOM_C2758,
        constants: SimConstants = DEFAULT_CONSTANTS,
    ) -> None:
        if callable(model_kind):
            self._factory = model_kind
        else:
            self._factory = MODEL_FACTORIES[model_kind]
        self.node = node
        self.constants = constants
        self.model_: Regressor | None = None

    @staticmethod
    def _rows(feat: np.ndarray, size: int, f, b, m) -> np.ndarray:
        n = len(np.atleast_1d(f))
        return np.hstack(
            [
                np.tile(feat, (n, 1)),
                np.full((n, 1), np.log2(size / GB + 1.0)),
                (np.asarray(f, dtype=float) / GHZ)[:, None],
                np.log2(np.asarray(b, dtype=float) / MB)[:, None],
                np.asarray(m, dtype=float)[:, None],
            ]
        )

    def fit(
        self,
        instances: Sequence[AppInstance],
        *,
        seed: SeedLike = 0,
        executor: "SweepExecutor | None" = None,
    ) -> "SoloSTP":
        """Train on log-EDP of the full 160-point solo sweeps.

        The per-instance sweeps fan out through ``executor`` (default:
        a fresh ``SweepExecutor`` honouring ``REPRO_WORKERS``).
        """
        from repro.parallel import SweepExecutor

        exec_ = executor if executor is not None else SweepExecutor()
        solo_sweeps = exec_.sweep_solos(
            instances, node=self.node, constants=self.constants
        )
        X_rows, y_rows, feats, sizes = [], [], [], []
        for inst, sweep in zip(instances, solo_sweeps):
            desc = describe_instance(
                inst, node=self.node, constants=self.constants, seed=seed
            )
            feats.append(desc.reduced())
            sizes.append(float(inst.data_bytes))
            X_rows.append(
                self._rows(
                    desc.reduced(), inst.data_bytes,
                    sweep.freq, sweep.block, sweep.mappers,
                )
            )
            y_rows.append(sweep.edp)
        y_all = np.concatenate(y_rows)
        _validate_edp_targets(y_all, "SoloSTP.fit")
        self.model_ = self._factory().fit(np.vstack(X_rows), np.log(y_all))
        self._train_features = np.vstack(feats)
        self._train_sizes = np.asarray(sizes)
        return self

    def _project(self, feat: np.ndarray, size: float) -> np.ndarray:
        """Same-size manifold projection, as in :class:`MLMSTP`."""
        train, sizes = self._train_features, self._train_sizes
        idx = np.flatnonzero(np.isclose(sizes, size, rtol=1e-6))
        if idx.size == 0:
            idx = np.arange(len(train))
        cand = train[idx]
        span = train.max(axis=0) - train.min(axis=0)
        span = np.where(span < 1e-12, 1.0, span)
        d = np.linalg.norm((cand - feat) / span, axis=1)
        return cand[int(np.argmin(d))]

    def predict_config(self, a: AppDescriptor) -> JobConfig:
        if self.model_ is None:
            raise RuntimeError("SoloSTP is not fitted; call fit() first")
        from repro.model.config import config_grid

        f, b, m = config_grid(self.node)
        X = self._rows(self._project(a.reduced(), a.data_bytes), a.data_bytes, f, b, m)
        pred = np.asarray(self.model_.predict(X))
        knobs = np.column_stack([f / GHZ, np.log2(b / MB), m])
        i = basin_select(pred, knobs)
        return JobConfig(frequency=float(f[i]), block_size=int(b[i]), n_mappers=int(m[i]))
