"""The ECoST wait queue (§5, Fig. 4).

Arriving jobs join the tail of a FIFO.  The job at the head holds a
*reservation*: it cannot starve, because any job scheduled out of
order ("leaping forward") must not delay it.  ECoST's pairing step
may prefer a job other than the head (e.g. an I-class job to pair
with a running application); the queue permits that leap only when
the head's reservation is not violated — the backfill rule of
[Sabin et al., JSSPP'03 / ICPP'04] the paper cites.

Our admissible-leap criterion: a non-head job may leave the queue
only if at least one other node slot remains available for the head
(so the head could be placed no later than it would have been), or if
the head itself is unplaceable right now and the leaper is strictly
smaller (shorter expected occupancy).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.workloads.base import AppClass, AppInstance


@dataclass
class QueuedApp:
    """One queued application with its classifier tag."""

    instance: AppInstance
    app_class: AppClass
    arrival_time: float
    expected_duration: float = 0.0
    features: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.instance.label


class WaitQueue:
    """FIFO with head reservation and guarded leap-forward.

    Backed by a :class:`collections.deque`: a steady-state stream pops
    the head on every placement round, and ``list.pop(0)`` shifts the
    whole remainder each time (O(n) per pop, O(n²) per drain).  The
    deque pops its head in O(1); leap-forward removals at an interior
    index stay O(n), which they were before.
    """

    def __init__(self) -> None:
        self._items: deque[QueuedApp] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[QueuedApp]:
        return iter(self._items)

    @property
    def head(self) -> Optional[QueuedApp]:
        return self._items[0] if self._items else None

    def push(self, item: QueuedApp) -> None:
        """Enqueue at the tail."""
        self._items.append(item)

    def pop_head(self) -> QueuedApp:
        if not self._items:
            raise IndexError("pop from empty wait queue")
        return self._items.popleft()

    def select(
        self,
        preference: Callable[[QueuedApp], float],
        *,
        allow_leap: bool,
    ) -> Optional[QueuedApp]:
        """Remove and return the most preferred schedulable job.

        ``preference`` returns a score (higher = more preferred).  The
        head is always eligible.  A non-head candidate is taken only
        when ``allow_leap`` is true — the caller asserts the head's
        reservation holds (another slot remains for it, or the head
        cannot run right now anyway).  Ties go to FIFO order.
        """
        if not self._items:
            return None
        if not allow_leap:
            return self.pop_head()
        best = self._best_index(preference)
        item = self._items[best]
        del self._items[best]
        return item

    def _best_index(self, preference: Callable[[QueuedApp], float]) -> int:
        """Index of the highest-scoring item; ties go to FIFO order."""
        best_i = 0
        best_score = preference(self._items[0])
        for i, item in enumerate(self._items):
            if i == 0:
                continue
            score = preference(item)
            if score > best_score:
                best_i, best_score = i, score
        return best_i

    def peek_best(
        self,
        preference: Callable[[QueuedApp], float],
        *,
        allow_leap: bool = True,
    ) -> Optional[QueuedApp]:
        """The job :meth:`select` would take, without removing it.

        Shares :meth:`select`'s ``allow_leap`` contract: with
        ``allow_leap=False`` the preview is the head (select always
        pops the head then), not the preference maximum — a caller
        previewing a no-leap decision must see the job that decision
        will actually take.
        """
        if not self._items:
            return None
        if not allow_leap:
            return self._items[0]
        return self._items[self._best_index(preference)]
