"""Execution-trace analysis over the engine's interval records.

The discrete-event engine emits one :class:`~repro.mapreduce.engine.
IntervalRecord` per constant-configuration segment.  This module turns
those segments into per-job and per-node time series — busy profiles,
utilisation averages, co-residency windows — the kind of post-mortem a
cluster operator builds from collected dstat/Wattsup logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mapreduce.engine import IntervalRecord


@dataclass(frozen=True)
class JobTraceSummary:
    """Aggregates for one job extracted from a node trace."""

    job_id: int
    first_seen: float
    last_seen: float
    busy_core_seconds: float  # Σ busy-fraction × mappers × dt
    solo_seconds: float  # time running without a co-resident
    shared_seconds: float  # time sharing the node
    avg_corunners: float  # co-residents averaged over its lifetime

    @property
    def span(self) -> float:
        return self.last_seen - self.first_seen

    @property
    def shared_fraction(self) -> float:
        total = self.solo_seconds + self.shared_seconds
        return self.shared_seconds / total if total > 0 else 0.0


def summarize_jobs(intervals: Sequence[IntervalRecord]) -> dict[int, JobTraceSummary]:
    """Per-job aggregates from one node's interval trace."""
    first: dict[int, float] = {}
    last: dict[int, float] = {}
    busy: dict[int, float] = {}
    solo: dict[int, float] = {}
    shared: dict[int, float] = {}
    corun: dict[int, float] = {}
    for seg in intervals:
        k = len(seg.job_ids)
        for idx, job_id in enumerate(seg.job_ids):
            first.setdefault(job_id, seg.start)
            last[job_id] = max(last.get(job_id, seg.start), seg.end)
            busy[job_id] = busy.get(job_id, 0.0) + (
                seg.u_cpu_per_job[idx] * seg.mappers_per_job[idx] * seg.duration
            )
            if k == 1:
                solo[job_id] = solo.get(job_id, 0.0) + seg.duration
            else:
                shared[job_id] = shared.get(job_id, 0.0) + seg.duration
            corun[job_id] = corun.get(job_id, 0.0) + (k - 1) * seg.duration
    out = {}
    for job_id in first:
        lifetime = max(last[job_id] - first[job_id], 1e-12)
        out[job_id] = JobTraceSummary(
            job_id=job_id,
            first_seen=first[job_id],
            last_seen=last[job_id],
            busy_core_seconds=busy.get(job_id, 0.0),
            solo_seconds=solo.get(job_id, 0.0),
            shared_seconds=shared.get(job_id, 0.0),
            avg_corunners=corun.get(job_id, 0.0) / lifetime,
        )
    return out


@dataclass(frozen=True)
class NodeUtilization:
    """Time-weighted node-level utilisation averages."""

    horizon: float
    busy_time: float  # seconds with >=1 job running
    avg_cores_busy: float  # over the horizon
    avg_disk_util: float
    avg_net_util: float
    avg_mem_util: float
    avg_power_watts: float  # includes idle draw over idle gaps

    @property
    def duty_cycle(self) -> float:
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0


def node_utilization(
    intervals: Sequence[IntervalRecord],
    *,
    horizon: float | None = None,
    idle_power: float = 0.0,
) -> NodeUtilization:
    """Average a node's utilisation over ``[0, horizon]``.

    Seconds not covered by any segment count as idle (zero utilisation,
    ``idle_power`` watts).
    """
    end = horizon
    if end is None:
        end = max((seg.end for seg in intervals), default=0.0)
    if end <= 0:
        raise ValueError("horizon must be positive (or intervals non-empty)")
    busy = cores = disk = net = mem = energy = 0.0
    for seg in intervals:
        dt = max(min(seg.end, end) - seg.start, 0.0)
        if dt <= 0:
            continue
        busy += dt
        cores += dt * sum(
            u * m for u, m in zip(seg.u_cpu_per_job, seg.mappers_per_job)
        )
        disk += dt * seg.u_disk
        net += dt * seg.u_net
        mem += dt * seg.u_mem
        energy += dt * seg.power_watts
    energy += (end - busy) * idle_power
    return NodeUtilization(
        horizon=end,
        busy_time=busy,
        avg_cores_busy=cores / end,
        avg_disk_util=disk / end,
        avg_net_util=net / end,
        avg_mem_util=mem / end,
        avg_power_watts=energy / end,
    )


def power_timeseries(
    intervals: Sequence[IntervalRecord],
    *,
    step_s: float = 1.0,
    horizon: float | None = None,
    idle_power: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """(times, watts) resampled on a fixed grid (no meter noise).

    Coverage-weighted: each bin ``[t, t + step_s)`` reports the
    time-weighted mean power of the segments covering it, with
    ``idle_power`` filling the uncovered remainder.  A segment that
    merely touches a bin's start instant no longer claims the whole
    bin — a half-covered bin reads halfway between segment power and
    idle, exactly the resampling
    :meth:`repro.telemetry.wattsup.WattsupMeter.trace_from_intervals`
    performs (bit-identical to its pre-noise samples at
    ``step_s=1.0``), so the deterministic and metered views of one run
    agree.  Intervals from one node are time-ordered and
    non-overlapping; one forward cursor sweeps segments and bins
    together in O(bins + segments).
    """
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    end = horizon
    if end is None:
        end = max((seg.end for seg in intervals), default=step_s)
    n = max(int(np.ceil(end / step_s)), 1)
    times = np.arange(n) * step_s
    watts = np.full(n, float(idle_power))
    cursor = 0
    for i in range(n):
        lo = float(times[i])
        hi = lo + step_s
        while cursor < len(intervals) and intervals[cursor].end <= lo:
            cursor += 1
        acc = 0.0
        covered = 0.0
        for k in range(cursor, len(intervals)):
            seg = intervals[k]
            if seg.start >= hi:
                break
            w = max(min(seg.end, hi) - max(seg.start, lo), 0.0)
            if w > 0:
                acc += seg.power_watts * w
                covered += w
        if covered > 0:
            watts[i] = (acc + idle_power * (step_s - covered)) / step_s
    return times, watts


def concurrency_histogram(
    intervals: Sequence[IntervalRecord]
) -> dict[int, float]:
    """Seconds spent at each co-residency level (1, 2, ... jobs)."""
    hist: dict[int, float] = {}
    for seg in intervals:
        k = len(seg.job_ids)
        hist[k] = hist.get(k, 0.0) + seg.duration
    return hist
