"""Energy-efficiency metrics (§2.6 of the paper).

The paper's figure of merit is the Energy-Delay Product,
``EDP = ExecutionTime × ExecutionTime × Power = Energy × Time``,
which penalises both wasted energy and lost performance — plain energy
would reward slowing the clock arbitrarily.
"""

from __future__ import annotations

import numpy as np


def energy_joules(avg_power_watts, duration_s) -> np.ndarray:
    """Energy from average power and duration (broadcasts)."""
    p = np.asarray(avg_power_watts, dtype=float)
    t = np.asarray(duration_s, dtype=float)
    if np.any(p < 0) or np.any(t < 0):
        raise ValueError("power and duration must be non-negative")
    return p * t


def edp(avg_power_watts, duration_s) -> np.ndarray:
    """Energy-Delay Product: ``P · T²`` (joule-seconds)."""
    t = np.asarray(duration_s, dtype=float)
    return energy_joules(avg_power_watts, duration_s) * t


def edp_from_energy(energy_j, duration_s) -> np.ndarray:
    """EDP from measured energy and duration."""
    e = np.asarray(energy_j, dtype=float)
    t = np.asarray(duration_s, dtype=float)
    if np.any(e < 0) or np.any(t < 0):
        raise ValueError("energy and duration must be non-negative")
    return e * t


def edp_improvement(baseline_edp, tuned_edp) -> np.ndarray:
    """Improvement factor (>1 means ``tuned`` is better)."""
    base = np.asarray(baseline_edp, dtype=float)
    tuned = np.asarray(tuned_edp, dtype=float)
    if np.any(tuned <= 0):
        raise ValueError("tuned EDP must be positive")
    return base / tuned


def relative_error(candidate_edp, oracle_edp) -> np.ndarray:
    """The paper's §7.1 'error rate': relative EDP excess vs. oracle (%)."""
    cand = np.asarray(candidate_edp, dtype=float)
    oracle = np.asarray(oracle_edp, dtype=float)
    if np.any(oracle <= 0):
        raise ValueError("oracle EDP must be positive")
    return (cand - oracle) / oracle * 100.0


def absolute_percentage_error(predicted, actual) -> np.ndarray:
    """APE (%) as used in Table 1 for the EDP-prediction models."""
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    if np.any(act == 0):
        raise ValueError("actual values must be non-zero")
    return np.abs(pred - act) / np.abs(act) * 100.0
