"""One snapshot/delta API over every counter family in the repository.

`EngineTelemetry` (event core, recontext cache, fault counters),
`SweepTelemetry` (parallel sweep wall times), and the artifact-cache
:class:`~repro.experiments.artifacts.CacheStats` each grew organically
next to the subsystem they observe; post-mortem analysis had to know
all three shapes.  The :class:`MetricsRegistry` unifies them: sources
register under a namespace, :meth:`snapshot` returns one nested
``{namespace: {metric: number}}`` dict, :meth:`delta` diffs two
snapshots (what did *this* run cost?), and :meth:`to_json` writes the
flat file ``tools/bench.py`` embeds in its benchmark payloads.

A *source* is either a zero-argument callable returning a mapping of
numbers, or an object exposing ``as_dict()`` (which the telemetry
classes in :mod:`repro.telemetry.profiling` provide).  Sources are
re-polled on every snapshot, so registering live telemetry objects is
the intended use — the registry itself stores no counters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Mapping

#: One polled source: () -> {metric: number}.
MetricsSource = Callable[[], Mapping[str, float]]

Snapshot = dict[str, dict[str, float]]


def _coerce(source: Any) -> MetricsSource:
    if callable(source):
        return source
    as_dict = getattr(source, "as_dict", None)
    if callable(as_dict):
        return as_dict
    raise TypeError(
        "metrics source must be callable or expose as_dict(); got "
        f"{type(source).__name__}"
    )


class MetricsRegistry:
    """Named numeric sources behind one snapshot/delta/export API."""

    def __init__(self) -> None:
        self._sources: dict[str, MetricsSource] = {}

    def register(self, namespace: str, source: Any) -> "MetricsRegistry":
        """Register a source under ``namespace`` (returns self).

        Re-registering a namespace replaces its source — a fresh run's
        telemetry object supersedes the old one.
        """
        if not namespace or "." in namespace:
            raise ValueError(
                f"namespace must be non-empty and dot-free, got {namespace!r}"
            )
        self._sources[namespace] = _coerce(source)
        return self

    @property
    def namespaces(self) -> list[str]:
        return sorted(self._sources)

    # -------------------------------------------------------- snapshots
    def snapshot(self) -> Snapshot:
        """Poll every source: ``{namespace: {metric: number}}``.

        Non-numeric values are dropped (a source may expose derived
        ``None`` rates before any activity).
        """
        out: Snapshot = {}
        for ns in sorted(self._sources):
            raw = self._sources[ns]()
            out[ns] = {
                k: v
                for k, v in raw.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
        return out

    @staticmethod
    def delta(before: Snapshot, after: Snapshot) -> Snapshot:
        """Per-metric ``after - before`` (metrics new in ``after`` pass
        through; metrics that vanished are ignored)."""
        out: Snapshot = {}
        for ns, metrics in after.items():
            base = before.get(ns, {})
            out[ns] = {k: v - base.get(k, 0.0) for k, v in metrics.items()}
        return out

    @staticmethod
    def flatten(snapshot: Snapshot) -> dict[str, float]:
        """``{"namespace.metric": value}`` — the flat exporter shape."""
        return {
            f"{ns}.{k}": v
            for ns, metrics in sorted(snapshot.items())
            for k, v in sorted(metrics.items())
        }

    # ---------------------------------------------------------- export
    def to_json(self, path: str | Path | None = None) -> dict[str, float]:
        """Flat metrics JSON; written to ``path`` when given."""
        flat = self.flatten(self.snapshot())
        if path is not None:
            Path(path).write_text(json.dumps(flat, indent=2, sort_keys=True) + "\n")
        return flat

    def render(self) -> str:
        """Human-readable metric listing grouped by namespace."""
        snap = self.snapshot()
        lines = []
        for ns in sorted(snap):
            lines.append(f"{ns}:")
            for k in sorted(snap[ns]):
                v = snap[ns][k]
                shown = f"{v:.6g}" if isinstance(v, float) else str(v)
                lines.append(f"  {k} = {shown}")
        return "\n".join(lines)


def cluster_registry(cluster, *, cache: bool = True) -> MetricsRegistry:
    """A registry pre-wired for one cluster run.

    Registers the cluster's :class:`EngineTelemetry` under ``engine``
    (which carries the fault counters too) and, when ``cache`` is true,
    the process-wide artifact-cache stats under ``artifact_cache``.
    """
    registry = MetricsRegistry()
    registry.register("engine", cluster.telemetry)
    if cache:
        from repro.experiments.artifacts import cache_stats

        registry.register(
            "artifact_cache",
            lambda: {
                "hits": cache_stats().hits,
                "misses": cache_stats().misses,
                "corrupt": cache_stats().corrupt,
                "stale": cache_stats().stale,
            },
        )
    return registry


def service_registry(service, *, cache: bool = False) -> MetricsRegistry:
    """A registry pre-wired for one streaming service.

    The service's :class:`~repro.telemetry.profiling.ServiceTelemetry`
    lands under ``service``, its engine's counters under ``engine``,
    and per-tenant accounting under ``tenants`` (flattened to
    ``<tenant>_<metric>`` numbers — nested dicts are dropped by
    :meth:`MetricsRegistry.snapshot`).  This is what the service's
    ``/metrics`` endpoint serves.
    """

    def tenant_metrics() -> dict[str, float]:
        out: dict[str, float] = {}
        for name, stats in service.tenants.as_dict().items():
            for key, value in stats.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    out[f"{name}_{key}"] = value
        return out

    registry = cluster_registry(service.cluster, cache=cache)
    registry.register("service", service.telemetry)
    registry.register("tenants", tenant_metrics)
    attach_online(registry, getattr(service, "controller", None))
    return registry


def attach_online(registry: MetricsRegistry, controller) -> MetricsRegistry:
    """Register the ``online`` namespace when the controller's STP
    carries online-tuning telemetry (``repro.online``); no-op — and no
    namespace — otherwise, so offline snapshots keep their shape.
    """
    telemetry = getattr(getattr(controller, "stp", None), "telemetry", None)
    if telemetry is not None and callable(getattr(telemetry, "as_dict", None)):
        registry.register("online", telemetry)
    return registry
