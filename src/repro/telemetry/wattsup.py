"""Simulated Wattsup PRO power meter.

Whole-system wall power at one-second granularity (§2.5).  The trace
can be produced from a :class:`~repro.mapreduce.engine.NodeEngine`
interval record (the power of each constant-configuration segment,
resampled at 1 Hz with meter noise) or from a closed-form run.  The
paper derives "core power" by subtracting the measured idle baseline;
:meth:`PowerTrace.average_above_idle` implements that methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.engine import IntervalRecord
from repro.utils.rng import SeedLike, rng_from


@dataclass(frozen=True)
class PowerTrace:
    """A 1 Hz wall-power recording."""

    samples_watts: np.ndarray  # one per second, starting at t=0
    idle_watts: float

    def __post_init__(self) -> None:
        if len(self.samples_watts) == 0:
            raise ValueError("power trace is empty")
        if np.any(np.asarray(self.samples_watts) < 0):
            raise ValueError("negative power sample")

    @property
    def duration_s(self) -> float:
        return float(len(self.samples_watts))

    @property
    def average_watts(self) -> float:
        return float(np.mean(self.samples_watts))

    @property
    def average_above_idle(self) -> float:
        """The paper's §2.5 methodology: mean power minus idle baseline."""
        return max(self.average_watts - self.idle_watts, 0.0)

    @property
    def energy_joules(self) -> float:
        return float(np.sum(self.samples_watts))  # 1 s per sample

    def window(self, t0: int, t1: int) -> "PowerTrace":
        """Sub-trace covering seconds [t0, t1)."""
        if not 0 <= t0 < t1 <= len(self.samples_watts):
            raise ValueError("window out of range")
        return PowerTrace(
            samples_watts=self.samples_watts[t0:t1], idle_watts=self.idle_watts
        )


class WattsupMeter:
    """Produces 1 Hz power traces with realistic meter noise."""

    def __init__(
        self,
        node: NodeSpec = ATOM_C2758,
        *,
        noise_watts: float = 0.4,
    ) -> None:
        if noise_watts < 0:
            raise ValueError("noise_watts must be >= 0")
        self.node = node
        self.noise_watts = noise_watts

    def trace_from_intervals(
        self,
        intervals: Sequence[IntervalRecord],
        *,
        until: float | None = None,
        seed: SeedLike = None,
    ) -> PowerTrace:
        """Resample an engine interval trace at 1 Hz.

        Seconds not covered by any segment read the idle baseline —
        the node is powered whether or not a job runs.

        A node's interval records arrive time-ordered and
        non-overlapping, so one forward cursor sweeps intervals and
        samples together in O(seconds + segments); rescanning every
        segment for every sample is O(seconds × segments), which
        dominates long steady-state traces.  The cursor visits exactly
        the segments the full rescan would have accumulated, in the
        same order, so the samples are byte-identical.  Unsorted input
        (a hand-built trace) falls back to the rescan.
        """
        rng = rng_from(seed)
        idle = self.node.power.idle_power
        intervals = list(intervals)
        end = until
        if end is None:
            end = max((i.end for i in intervals), default=1.0)
        n = max(int(np.ceil(end)), 1)
        samples = np.full(n, idle)
        sorted_in = all(
            intervals[k - 1].start <= intervals[k].start
            for k in range(1, len(intervals))
        )
        cursor = 0 if sorted_in else None
        for t in range(n):
            lo, hi = float(t), float(t + 1)
            acc = 0.0
            covered = 0.0
            if cursor is None:
                for seg in intervals:
                    w = max(min(seg.end, hi) - max(seg.start, lo), 0.0)
                    if w > 0:
                        acc += seg.power_watts * w
                        covered += w
            else:
                # Drop segments that ended at or before this second;
                # they can never overlap a later sample either.
                while cursor < len(intervals) and intervals[cursor].end <= lo:
                    cursor += 1
                for k in range(cursor, len(intervals)):
                    seg = intervals[k]
                    if seg.start >= hi:
                        break
                    w = max(min(seg.end, hi) - max(seg.start, lo), 0.0)
                    if w > 0:
                        acc += seg.power_watts * w
                        covered += w
            samples[t] = acc + idle * (1.0 - covered)
        samples = np.maximum(samples + rng.normal(0.0, self.noise_watts, size=n), 0.0)
        return PowerTrace(samples_watts=samples, idle_watts=idle)

    def constant_trace(
        self, power_watts: float, duration_s: float, *, seed: SeedLike = None
    ) -> PowerTrace:
        """A flat trace (closed-form runs) with meter noise."""
        if power_watts < 0 or duration_s <= 0:
            raise ValueError("power must be >= 0 and duration > 0")
        rng = rng_from(seed)
        n = max(int(round(duration_s)), 1)
        samples = np.maximum(
            power_watts + rng.normal(0.0, self.noise_watts, size=n), 0.0
        )
        return PowerTrace(samples_watts=samples, idle_watts=self.node.power.idle_power)
