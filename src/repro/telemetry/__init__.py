"""Measurement substrate: the paper's perf / dstat / Wattsup stack.

The paper instruments every run with three tools (§2.5): ``perf``
(multiplexed PMU counters), ``dstat`` (CPU/disk/memory utilisation at
1 s) and a Wattsup PRO wall-power meter (1 s).  This package simulates
all three against either a live :class:`~repro.mapreduce.engine.
NodeEngine` trace or a closed-form profiling run, producing the
14-feature vectors that drive classification and self-tuning.
"""

from repro.telemetry.metrics import edp, energy_joules, edp_improvement
from repro.telemetry.perf import PerfSampler, PerfReport, PMU_EVENTS
from repro.telemetry.dstat import DstatMonitor, DstatRow
from repro.telemetry.wattsup import WattsupMeter, PowerTrace
from repro.telemetry.profiling import FEATURE_NAMES, profile_features

__all__ = [
    "edp",
    "energy_joules",
    "edp_improvement",
    "PerfSampler",
    "PerfReport",
    "PMU_EVENTS",
    "DstatMonitor",
    "DstatRow",
    "WattsupMeter",
    "PowerTrace",
    "FEATURE_NAMES",
    "profile_features",
]
