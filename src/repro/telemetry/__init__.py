"""Measurement substrate: the paper's perf / dstat / Wattsup stack.

The paper instruments every run with three tools (§2.5): ``perf``
(multiplexed PMU counters), ``dstat`` (CPU/disk/memory utilisation at
1 s) and a Wattsup PRO wall-power meter (1 s).  This package simulates
all three against either a live :class:`~repro.mapreduce.engine.
NodeEngine` trace or a closed-form profiling run, producing the
14-feature vectors that drive classification and self-tuning.

Exports resolve lazily (PEP 562): several submodules here import from
``repro.mapreduce.engine`` while the engine itself imports
``repro.telemetry.tracing``, so an eager package init would close an
import cycle whenever ``repro.mapreduce`` loads first.
"""

import importlib

_EXPORT_TO_SUBMODULE = {
    "edp": "metrics",
    "energy_joules": "metrics",
    "edp_improvement": "metrics",
    "PerfSampler": "perf",
    "PerfReport": "perf",
    "PMU_EVENTS": "perf",
    "DstatMonitor": "dstat",
    "DstatRow": "dstat",
    "WattsupMeter": "wattsup",
    "PowerTrace": "wattsup",
    "FEATURE_NAMES": "profiling",
    "profile_features": "profiling",
    "ServiceTelemetry": "profiling",
    "MetricsRegistry": "registry",
    "cluster_registry": "registry",
    "service_registry": "registry",
    "Tracer": "tracing",
    "NullTracer": "tracing",
    "NULL_TRACER": "tracing",
    "SWEEP_PID": "tracing",
    "validate_chrome_trace": "tracing",
}

__all__ = list(_EXPORT_TO_SUBMODULE)


def __getattr__(name):
    try:
        submodule = _EXPORT_TO_SUBMODULE[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(f"{__name__}.{submodule}"), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
