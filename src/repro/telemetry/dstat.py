"""Simulated ``dstat``: per-second CPU / disk / memory monitoring.

Mirrors the columns the paper collects (§3.1): CPUuser, CPUsys,
CPUidle, CPUiowait, disk read/write bandwidth, memory footprint and
page-cache size.  Rows can be produced from a live
:class:`~repro.mapreduce.engine.NodeEngine` interval trace (resampled
to one second) or synthesised for a standalone profiling run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.engine import IntervalRecord
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.costmodel import standalone_metrics
from repro.utils.rng import SeedLike, rng_from
from repro.workloads.base import AppInstance

#: Kernel share of busy CPU time (I/O stack, JVM GC) reported as sys.
_SYS_FRACTION = 0.12


@dataclass(frozen=True)
class DstatRow:
    """One 1-second dstat sample (percentages in [0, 100])."""

    time: float
    cpu_user: float
    cpu_sys: float
    cpu_idle: float
    cpu_iowait: float
    io_read_bps: float
    io_write_bps: float
    mem_footprint_bytes: float
    mem_cache_bytes: float

    def __post_init__(self) -> None:
        total = self.cpu_user + self.cpu_sys + self.cpu_idle + self.cpu_iowait
        if not np.isclose(total, 100.0, atol=0.5):
            raise ValueError(f"CPU percentages sum to {total}, expected 100")


class DstatMonitor:
    """Produces dstat rows for profiling runs and engine traces."""

    def __init__(
        self,
        node: NodeSpec = ATOM_C2758,
        *,
        constants: SimConstants = DEFAULT_CONSTANTS,
        noise_sigma: float = 0.03,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        self.node = node
        self.constants = constants
        self.noise_sigma = noise_sigma

    # ------------------------------------------------------ profiling run
    def _steady_state(self, instance: AppInstance, frequency: float,
                      block_size: int, n_mappers: int) -> dict[str, float]:
        p = instance.profile
        jm = standalone_metrics(
            p, instance.data_bytes, frequency, block_size, n_mappers,
            node=self.node, constants=self.constants,
        )
        sc = jm.scalar
        m_eff = sc("m_eff")
        busy = sc("u_cpu") * m_eff / self.node.n_cores  # node-wide share
        user = busy * (1.0 - _SYS_FRACTION) * 100.0
        sys = busy * _SYS_FRACTION * 100.0
        iowait = min(
            sc("u_disk") * (1.0 - p.io_overlap) * m_eff / self.node.n_cores * 100.0,
            100.0 - user - sys,
        )
        idle = 100.0 - user - sys - iowait
        duration = sc("duration")
        read_bps = instance.data_bytes * p.read_factor / duration
        write_bytes = instance.data_bytes * (
            p.spill_factor + p.shuffle_factor + p.output_factor
        )
        write_bps = write_bytes / duration
        footprint = n_mappers * p.footprint_per_task
        cache = max(
            min(
                self.node.available_memory_bytes - footprint,
                instance.data_bytes * 0.5,
            ),
            0.0,
        )
        return {
            "cpu_user": user,
            "cpu_sys": sys,
            "cpu_idle": idle,
            "cpu_iowait": iowait,
            "io_read_bps": read_bps,
            "io_write_bps": write_bps,
            "mem_footprint_bytes": footprint,
            "mem_cache_bytes": cache,
            "_duration": duration,
        }

    def sample_run(
        self,
        instance: AppInstance,
        frequency: float,
        block_size: int,
        n_mappers: int,
        *,
        duration_s: float | None = None,
        seed: SeedLike = None,
    ) -> list[DstatRow]:
        """1 Hz rows for a standalone profiling run (learning period)."""
        rng = rng_from(seed)
        ss = self._steady_state(instance, frequency, block_size, n_mappers)
        window = duration_s if duration_s is not None else min(
            self.constants.learning_period_s, ss["_duration"]
        )
        n = max(int(round(window)), 1)
        rows = []
        for t in range(n):
            jitter = rng.normal(0.0, self.noise_sigma, size=4)
            user = max(ss["cpu_user"] * (1 + jitter[0]), 0.0)
            sys = max(ss["cpu_sys"] * (1 + jitter[1]), 0.0)
            iowait = max(ss["cpu_iowait"] * (1 + jitter[2]), 0.0)
            scale = 100.0 / max(user + sys + iowait, 100.0)
            user, sys, iowait = user * scale, sys * scale, iowait * scale
            idle = max(100.0 - user - sys - iowait, 0.0)
            rows.append(
                DstatRow(
                    time=float(t),
                    cpu_user=user,
                    cpu_sys=sys,
                    cpu_idle=idle,
                    cpu_iowait=iowait,
                    io_read_bps=max(ss["io_read_bps"] * (1 + jitter[3]), 0.0),
                    io_write_bps=max(
                        ss["io_write_bps"] * (1 + rng.normal(0, self.noise_sigma)), 0.0
                    ),
                    mem_footprint_bytes=ss["mem_footprint_bytes"],
                    mem_cache_bytes=ss["mem_cache_bytes"],
                )
            )
        return rows

    # ------------------------------------------------------- engine trace
    def rows_from_intervals(
        self, intervals: Sequence[IntervalRecord], *, until: float | None = None
    ) -> list[DstatRow]:
        """Resample a node's interval trace to 1-second dstat rows."""
        if not intervals:
            return []
        end = until if until is not None else max(i.end for i in intervals)
        rows = []
        for t in range(int(np.ceil(end))):
            lo, hi = float(t), float(t + 1)
            busy = disk = 0.0
            for seg in intervals:
                w = max(min(seg.end, hi) - max(seg.start, lo), 0.0)
                if w <= 0:
                    continue
                cores_busy = sum(
                    u * m for u, m in zip(seg.u_cpu_per_job, seg.mappers_per_job)
                )
                busy += w * cores_busy / self.node.n_cores
                disk += w * seg.u_disk
            user = busy * (1.0 - _SYS_FRACTION) * 100.0
            sys = busy * _SYS_FRACTION * 100.0
            iowait = min(disk * 40.0, 100.0 - user - sys)
            rows.append(
                DstatRow(
                    time=lo,
                    cpu_user=user,
                    cpu_sys=sys,
                    cpu_idle=100.0 - user - sys - iowait,
                    cpu_iowait=iowait,
                    io_read_bps=disk * self.node.disk.peak_bw * 0.6,
                    io_write_bps=disk * self.node.disk.peak_bw * 0.4,
                    mem_footprint_bytes=0.0,
                    mem_cache_bytes=0.0,
                )
            )
        return rows


def average_rows(rows: Iterable[DstatRow]) -> dict[str, float]:
    """Column means over a window of dstat rows."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to average")
    fields = (
        "cpu_user", "cpu_sys", "cpu_idle", "cpu_iowait",
        "io_read_bps", "io_write_bps", "mem_footprint_bytes", "mem_cache_bytes",
    )
    return {f: float(np.mean([getattr(r, f) for r in rows])) for f in fields}
