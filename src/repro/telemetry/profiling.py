"""The 14-feature profiling vector (§3.1-§3.2 of the paper).

A "learning period" run of an application under a known configuration
is observed with the simulated perf and dstat; the combined feature
vector is what the classifier, PCA analysis and the self-tuning
predictors consume.  Feature order is fixed and public
(:data:`FEATURE_NAMES`) so model inputs are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.telemetry.dstat import DstatMonitor, average_rows
from repro.telemetry.perf import PerfSampler
from repro.utils.rng import SeedLike, derive_rng, rng_from
from repro.utils.units import MB
from repro.workloads.base import AppInstance

#: The 14 collected metrics, in canonical order.
FEATURE_NAMES: tuple[str, ...] = (
    "cpu_user",          # dstat, %
    "cpu_sys",           # dstat, %
    "cpu_idle",          # dstat, %
    "cpu_iowait",        # dstat, %
    "io_read_mbps",      # dstat
    "io_write_mbps",     # dstat
    "mem_footprint_mb",  # dstat
    "mem_cache_mb",      # dstat
    "ipc",               # perf
    "icache_mpki",       # perf
    "dcache_mpki",       # perf
    "llc_mpki",          # perf
    "branch_mpki",       # perf
    "ctx_switch_rate",   # perf, per second
)

#: The 7 features retained after PCA + clustering (§3.2).
REDUCED_FEATURE_NAMES: tuple[str, ...] = (
    "cpu_user",
    "cpu_iowait",
    "io_read_mbps",
    "io_write_mbps",
    "ipc",
    "mem_footprint_mb",
    "llc_mpki",
)


def profile_features(
    instance: AppInstance,
    config: JobConfig,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: SeedLike = None,
) -> dict[str, float]:
    """Run the learning-period profiling and return the 14 features.

    Deterministic for a given ``(instance, config, seed)`` triple: the
    perf/dstat noise streams are derived from the identity of the run.
    """
    base = rng_from(seed)
    perf_rng = derive_rng(int(base.integers(2**31)), "perf", instance.label, config.label)
    dstat_rng = derive_rng(int(base.integers(2**31)), "dstat", instance.label, config.label)

    perf = PerfSampler(node, constants=constants).sample(
        instance, config.frequency, config.block_size, config.n_mappers,
        seed=perf_rng,
    )
    rows = DstatMonitor(node, constants=constants).sample_run(
        instance, config.frequency, config.block_size, config.n_mappers,
        seed=dstat_rng,
    )
    avg = average_rows(rows)
    window = perf.duration_s
    return {
        "cpu_user": avg["cpu_user"],
        "cpu_sys": avg["cpu_sys"],
        "cpu_idle": avg["cpu_idle"],
        "cpu_iowait": avg["cpu_iowait"],
        "io_read_mbps": avg["io_read_bps"] / MB,
        "io_write_mbps": avg["io_write_bps"] / MB,
        "mem_footprint_mb": avg["mem_footprint_bytes"] / MB,
        "mem_cache_mb": avg["mem_cache_bytes"] / MB,
        "ipc": perf.ipc,
        "icache_mpki": perf.mpki("L1-icache-load-misses"),
        "dcache_mpki": perf.mpki("L1-dcache-load-misses"),
        "llc_mpki": perf.mpki("LLC-load-misses"),
        "branch_mpki": perf.mpki("branch-misses"),
        "ctx_switch_rate": perf.counts["context-switches"] / window,
    }


def feature_vector(features: dict[str, float]) -> np.ndarray:
    """Features dict → array in :data:`FEATURE_NAMES` order."""
    missing = [n for n in FEATURE_NAMES if n not in features]
    if missing:
        raise KeyError(f"missing features: {missing}")
    return np.array([features[n] for n in FEATURE_NAMES], dtype=float)


def reduced_vector(features: dict[str, float]) -> np.ndarray:
    """Features dict → array in :data:`REDUCED_FEATURE_NAMES` order."""
    missing = [n for n in REDUCED_FEATURE_NAMES if n not in features]
    if missing:
        raise KeyError(f"missing features: {missing}")
    return np.array([features[n] for n in REDUCED_FEATURE_NAMES], dtype=float)


# ----------------------------------------------------- engine telemetry
class EngineTelemetry:
    """Hot-path accounting for the discrete-event engine.

    Mirrors :class:`SweepTelemetry`'s shape for the event core: how
    many events the cluster processed (and how many were stale entries
    the generation counters discarded), how often the memoized
    recontext cache short-circuited a cost-kernel evaluation, and how
    many raw kernel evaluations were ultimately paid.  A steady-state
    run with a recurring application mix should report a high
    recontext hit rate — that cache is what makes per-decision model
    evaluation cheap enough for online self-tuning.
    """

    def __init__(self) -> None:
        self.events = 0
        self.stale_events = 0
        self.recontext_hits = 0
        self.recontext_misses = 0
        self.recontext_rejects = 0  # poisoned entries detected by key echo
        self.kernel_evals = 0
        # Fault-injection / recovery counters (repro.faults).
        self.faults_injected = 0
        self.task_failures = 0
        self.node_crashes = 0
        self.node_recoveries = 0
        self.stragglers = 0
        self.tasks_retried = 0
        self.speculative_launched = 0
        self.speculative_wasted = 0
        self.blocks_rereplicated = 0
        self.blocks_lost = 0
        self.nodes_blacklisted = 0
        # Recorder memory accounting: who is holding interval segments,
        # per node, under which recorder mode — so a peak_rss movement
        # in a bench payload is attributable to a specific recorder.
        self.segments_by_node: dict[int, int] = {}
        self.segments_dropped_by_node: dict[int, int] = {}
        self.recorder_modes: dict[int, str] = {}

    # -- recording -----------------------------------------------------
    def record_event(self, *, stale: bool = False) -> None:
        self.events += 1
        if stale:
            self.stale_events += 1

    def record_fault(self, kind: str) -> None:
        """One injected fault event that actually took effect."""
        self.faults_injected += 1
        if kind == "task_fail":
            self.task_failures += 1
        elif kind == "node_crash":
            self.node_crashes += 1
        elif kind == "node_recover":
            self.node_recoveries += 1
        elif kind == "straggler":
            self.stragglers += 1
        else:
            raise ValueError(f"unknown fault kind {kind!r}")

    def record_retry(self) -> None:
        """A killed attempt re-executed from scratch."""
        self.tasks_retried += 1

    def record_speculative(self, *, wasted: bool = False) -> None:
        """A speculative duplicate launched, or a losing attempt killed."""
        if wasted:
            self.speculative_wasted += 1
        else:
            self.speculative_launched += 1

    def record_rereplication(self, rereplicated: int, lost: int) -> None:
        """Block recovery outcome after a datanode loss."""
        self.blocks_rereplicated += rereplicated
        self.blocks_lost += lost

    def record_blacklist(self) -> None:
        """A flapping node removed from scheduling consideration."""
        self.nodes_blacklisted += 1

    def record_recontext(self, *, hit: bool, jobs: int = 1) -> None:
        """``jobs`` per-job metric requests served (hit) or paid (miss)."""
        if hit:
            self.recontext_hits += jobs
        else:
            self.recontext_misses += jobs
            self.kernel_evals += jobs

    def record_reject(self) -> None:
        """A cache entry whose echoed key disagreed with its slot."""
        self.recontext_rejects += 1

    def record_recorder(self, node_id: int, mode: str) -> None:
        """Which interval-recorder mode a node's engine runs with."""
        self.recorder_modes[node_id] = mode

    def record_segment(self, node_id: int) -> None:
        """One interval segment recorded on ``node_id``."""
        by_node = self.segments_by_node
        by_node[node_id] = by_node.get(node_id, 0) + 1

    def record_segments_dropped(self, node_id: int, n: int = 1) -> None:
        """Segments evicted by a bounded (streaming) recorder."""
        by_node = self.segments_dropped_by_node
        by_node[node_id] = by_node.get(node_id, 0) + n

    # -- derived -------------------------------------------------------
    @property
    def recontext_hit_rate(self) -> float | None:
        """Hits / lookups, or ``None`` before any recontext ran."""
        total = self.recontext_hits + self.recontext_misses
        if total == 0:
            return None
        return self.recontext_hits / total

    @property
    def live_events(self) -> int:
        return self.events - self.stale_events

    @property
    def segments_recorded(self) -> int:
        return sum(self.segments_by_node.values())

    @property
    def segments_dropped(self) -> int:
        return sum(self.segments_dropped_by_node.values())

    @property
    def segments_retained(self) -> int:
        """Segments still held in recorder memory across all nodes."""
        return self.segments_recorded - self.segments_dropped

    def as_dict(self) -> dict[str, float]:
        """Counter snapshot for :class:`repro.telemetry.registry.
        MetricsRegistry` (derived rates included when defined)."""
        out = {
            "events": self.events,
            "stale_events": self.stale_events,
            "live_events": self.live_events,
            "recontext_hits": self.recontext_hits,
            "recontext_misses": self.recontext_misses,
            "recontext_rejects": self.recontext_rejects,
            "kernel_evals": self.kernel_evals,
            "faults_injected": self.faults_injected,
            "task_failures": self.task_failures,
            "node_crashes": self.node_crashes,
            "node_recoveries": self.node_recoveries,
            "stragglers": self.stragglers,
            "tasks_retried": self.tasks_retried,
            "speculative_launched": self.speculative_launched,
            "speculative_wasted": self.speculative_wasted,
            "blocks_rereplicated": self.blocks_rereplicated,
            "blocks_lost": self.blocks_lost,
            "nodes_blacklisted": self.nodes_blacklisted,
            "segments_recorded": self.segments_recorded,
            "segments_dropped": self.segments_dropped,
            "segments_retained": self.segments_retained,
        }
        if self.segments_by_node:
            out["max_node_segments"] = max(self.segments_by_node.values())
            # Non-numeric entries are visible to as_dict consumers but
            # intentionally dropped by MetricsRegistry.snapshot.
            out["segments_by_node"] = dict(sorted(self.segments_by_node.items()))
        if self.recorder_modes:
            modes: dict[str, int] = {}
            for mode in self.recorder_modes.values():
                modes[mode] = modes.get(mode, 0) + 1
            out["recorder_modes"] = modes
        rate = self.recontext_hit_rate
        if rate is not None:
            out["recontext_hit_rate"] = rate
        return out

    def merge(self, other: "EngineTelemetry") -> "EngineTelemetry":
        """Fold another telemetry object into this one (returns self)."""
        self.events += other.events
        self.stale_events += other.stale_events
        self.recontext_hits += other.recontext_hits
        self.recontext_misses += other.recontext_misses
        self.recontext_rejects += other.recontext_rejects
        self.kernel_evals += other.kernel_evals
        self.faults_injected += other.faults_injected
        self.task_failures += other.task_failures
        self.node_crashes += other.node_crashes
        self.node_recoveries += other.node_recoveries
        self.stragglers += other.stragglers
        self.tasks_retried += other.tasks_retried
        self.speculative_launched += other.speculative_launched
        self.speculative_wasted += other.speculative_wasted
        self.blocks_rereplicated += other.blocks_rereplicated
        self.blocks_lost += other.blocks_lost
        self.nodes_blacklisted += other.nodes_blacklisted
        for node_id, n in other.segments_by_node.items():
            self.segments_by_node[node_id] = (
                self.segments_by_node.get(node_id, 0) + n
            )
        for node_id, n in other.segments_dropped_by_node.items():
            self.segments_dropped_by_node[node_id] = (
                self.segments_dropped_by_node.get(node_id, 0) + n
            )
        self.recorder_modes.update(other.recorder_modes)
        return self

    def render(self) -> str:
        """Human-readable engine summary."""
        lines = [
            f"engine telemetry: {self.events} event(s), "
            f"{self.stale_events} stale"
        ]
        rate = self.recontext_hit_rate
        if rate is not None:
            lines.append(
                f"  recontext cache: {self.recontext_hits} hit(s) / "
                f"{self.recontext_misses} miss(es) ({rate:.0%} hit rate), "
                f"{self.kernel_evals} kernel eval(s)"
            )
        if self.recontext_rejects:
            lines.append(
                f"  poisoned entries rejected: {self.recontext_rejects}"
            )
        if self.segments_by_node:
            modes = ", ".join(
                sorted({m for m in self.recorder_modes.values()})
            )
            lines.append(
                f"  recorders ({modes}): {self.segments_recorded} segment(s) "
                f"recorded, {self.segments_dropped} dropped, "
                f"max {max(self.segments_by_node.values())} on one node"
            )
        if self.faults_injected:
            lines.append(
                f"  faults: {self.faults_injected} injected "
                f"({self.task_failures} task, {self.node_crashes} crash, "
                f"{self.node_recoveries} recover, {self.stragglers} straggler), "
                f"{self.tasks_retried} retried, "
                f"{self.speculative_launched} speculative "
                f"({self.speculative_wasted} wasted), "
                f"{self.blocks_rereplicated} block(s) re-replicated, "
                f"{self.blocks_lost} lost, "
                f"{self.nodes_blacklisted} node(s) blacklisted"
            )
        return "\n".join(lines)


# ---------------------------------------------------- service telemetry
class ServiceTelemetry:
    """Ingestion-path accounting for the streaming cluster service.

    Counts what happened at the service edge (requests, admission
    outcomes, malformed payloads) and behind it (dispatches into the
    engine, harvested completions), mirroring the counter/as_dict shape
    of :class:`EngineTelemetry` so a :class:`repro.telemetry.registry.
    MetricsRegistry` can expose both side by side under separate
    namespaces.
    """

    def __init__(self) -> None:
        self.requests = 0
        self.accepted = 0
        self.rejected = 0
        self.malformed = 0
        self.rejections_by_reason: dict[str, int] = {}
        self.dispatched = 0
        self.completed = 0
        self.advances = 0  # engine advance calls (virtual ticks / pumps)

    # -- recording -----------------------------------------------------
    def record_request(self) -> None:
        self.requests += 1

    def record_accept(self) -> None:
        self.accepted += 1

    def record_reject(self, reason: str) -> None:
        self.rejected += 1
        self.rejections_by_reason[reason] = (
            self.rejections_by_reason.get(reason, 0) + 1
        )

    def record_malformed(self) -> None:
        self.malformed += 1

    def record_dispatch(self, n: int = 1) -> None:
        self.dispatched += n

    def record_complete(self, n: int = 1) -> None:
        self.completed += n

    def record_advance(self) -> None:
        self.advances += 1

    # -- derived -------------------------------------------------------
    @property
    def accept_rate(self) -> float | None:
        """accepted / (accepted + rejected), None before any decision."""
        decided = self.accepted + self.rejected
        if decided == 0:
            return None
        return self.accepted / decided

    @property
    def inflight(self) -> int:
        """Accepted jobs not yet harvested as completions."""
        return self.accepted - self.completed

    def as_dict(self) -> dict[str, float]:
        """Counter snapshot for :class:`repro.telemetry.registry.
        MetricsRegistry` (derived rates included when defined)."""
        out = {
            "requests": self.requests,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "malformed": self.malformed,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "inflight": self.inflight,
            "advances": self.advances,
        }
        for reason, n in sorted(self.rejections_by_reason.items()):
            out[f"rejected_{reason}"] = n
        rate = self.accept_rate
        if rate is not None:
            out["accept_rate"] = rate
        return out

    def render(self) -> str:
        """Human-readable ingestion summary."""
        lines = [
            f"service telemetry: {self.requests} request(s), "
            f"{self.accepted} accepted, {self.rejected} rejected, "
            f"{self.malformed} malformed"
        ]
        if self.rejections_by_reason:
            detail = ", ".join(
                f"{n} {reason}"
                for reason, n in sorted(self.rejections_by_reason.items())
            )
            lines.append(f"  rejections: {detail}")
        lines.append(
            f"  engine: {self.dispatched} dispatched, "
            f"{self.completed} completed, {self.inflight} in flight, "
            f"{self.advances} advance(s)"
        )
        return "\n".join(lines)


# ----------------------------------------------------- online telemetry
class OnlineTelemetry:
    """Counters for the online self-tuning layer (``repro.online``).

    One object is shared between an :class:`repro.online.stp.OnlineSTP`
    (updates, refits, drift alarms, learning-period re-sweeps) and the
    :class:`repro.online.shadow.ShadowSTP` wrapped around it (scored
    decisions, cumulative EDP regret per contender, promotion), so the
    ``online`` registry namespace exposes the whole layer at once.
    """

    def __init__(self) -> None:
        self.updates = 0  # telemetry rows folded into the model
        self.refits = 0  # full window refits (drift / cluster change)
        self.drift_alarms = 0
        self.relearn_sweeps = 0  # learning-period pair re-sweeps
        self.tuned_hits = 0  # predictions served from swept-pair entries
        self.skipped_rows = 0  # non-positive / non-finite observed EDP
        self.noisy_rows = 0  # unsynchronized pairings: detector-only
        self.window_rows = 0
        self.decisions = 0  # pairing decisions scored in shadow mode
        self.promotions = 0
        self.promoted_at = -1  # decision index; -1 while unpromoted
        self.champion_regret = 0.0  # cumulative EDP regret (J·s)
        self.challenger_regret = 0.0

    def as_dict(self) -> dict[str, float]:
        """Counter snapshot for :class:`repro.telemetry.registry.
        MetricsRegistry`."""
        return {
            "updates": self.updates,
            "refits": self.refits,
            "drift_alarms": self.drift_alarms,
            "relearn_sweeps": self.relearn_sweeps,
            "tuned_hits": self.tuned_hits,
            "skipped_rows": self.skipped_rows,
            "noisy_rows": self.noisy_rows,
            "window_rows": self.window_rows,
            "decisions": self.decisions,
            "promotions": self.promotions,
            "promoted_at": self.promoted_at,
            "champion_regret": self.champion_regret,
            "challenger_regret": self.challenger_regret,
        }

    def render(self) -> str:
        """Human-readable online-tuning summary."""
        lines = [
            f"online telemetry: {self.updates} update(s), "
            f"{self.refits} refit(s), {self.drift_alarms} drift alarm(s), "
            f"{self.relearn_sweeps} learning sweep(s)"
        ]
        if self.decisions:
            state = (
                f"promoted at decision {self.promoted_at}"
                if self.promoted_at >= 0
                else "champion active"
            )
            lines.append(
                f"  shadow: {self.decisions} decision(s), {state}; "
                f"cumulative regret champion={self.champion_regret:.3g} "
                f"challenger={self.challenger_regret:.3g}"
            )
        return "\n".join(lines)


# ------------------------------------------------------ sweep telemetry
class SweepTelemetry:
    """Wall-time and cache accounting for fanned-out sweeps.

    The parallel sweep executor records one sample per task — which
    worker ran it and how long it took — plus the artifact-cache
    hit/miss delta observed around each batch, so a sweep can report
    per-worker wall time and its cache hit rate without any global
    state of its own.
    """

    def __init__(self) -> None:
        self.worker_wall_s: dict[str, float] = {}
        self.worker_tasks: dict[str, int] = {}
        self.n_batches = 0
        self.batch_wall_s = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- recording -----------------------------------------------------
    def record_task(self, worker: str, wall_s: float) -> None:
        """One executed task: ``worker`` id (pid) and its wall time."""
        self.worker_wall_s[worker] = self.worker_wall_s.get(worker, 0.0) + wall_s
        self.worker_tasks[worker] = self.worker_tasks.get(worker, 0) + 1

    def record_batch(self, wall_s: float) -> None:
        """End-to-end wall time of one fan-out batch."""
        self.n_batches += 1
        self.batch_wall_s += wall_s

    def record_cache(self, hits: int, misses: int) -> None:
        """Artifact-cache activity observed while a batch ran."""
        self.cache_hits += hits
        self.cache_misses += misses

    # -- derived -------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return sum(self.worker_tasks.values())

    @property
    def task_wall_s(self) -> float:
        """Total task compute time across all workers."""
        return sum(self.worker_wall_s.values())

    @property
    def cache_hit_rate(self) -> float | None:
        """Hits / (hits + misses), or ``None`` with no cache activity."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return None
        return self.cache_hits / total

    @property
    def parallel_speedup(self) -> float | None:
        """Aggregate task time over batch wall time (≈ effective workers)."""
        if self.batch_wall_s <= 0.0:
            return None
        return self.task_wall_s / self.batch_wall_s

    def as_dict(self) -> dict[str, float]:
        """Counter snapshot for :class:`repro.telemetry.registry.
        MetricsRegistry` (per-worker detail collapses to totals)."""
        out = {
            "n_tasks": self.n_tasks,
            "n_workers": len(self.worker_wall_s),
            "n_batches": self.n_batches,
            "batch_wall_s": self.batch_wall_s,
            "task_wall_s": self.task_wall_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        rate = self.cache_hit_rate
        if rate is not None:
            out["cache_hit_rate"] = rate
        speedup = self.parallel_speedup
        if speedup is not None:
            out["parallel_speedup"] = speedup
        return out

    def merge(self, other: "SweepTelemetry") -> "SweepTelemetry":
        """Fold another telemetry object into this one (returns self)."""
        for w, s in other.worker_wall_s.items():
            self.worker_wall_s[w] = self.worker_wall_s.get(w, 0.0) + s
        for w, n in other.worker_tasks.items():
            self.worker_tasks[w] = self.worker_tasks.get(w, 0) + n
        self.n_batches += other.n_batches
        self.batch_wall_s += other.batch_wall_s
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        return self

    def render(self) -> str:
        """Human-readable per-worker summary."""
        lines = [
            f"sweep telemetry: {self.n_tasks} task(s) in {self.n_batches} "
            f"batch(es), {self.batch_wall_s:.3f}s wall"
        ]
        for worker in sorted(self.worker_wall_s):
            lines.append(
                f"  worker {worker}: {self.worker_tasks[worker]} task(s), "
                f"{self.worker_wall_s[worker]:.3f}s"
            )
        rate = self.cache_hit_rate
        if rate is not None:
            lines.append(
                f"  cache: {self.cache_hits} hit(s) / "
                f"{self.cache_misses} miss(es) ({rate:.0%} hit rate)"
            )
        speedup = self.parallel_speedup
        if speedup is not None:
            lines.append(f"  effective parallelism: {speedup:.2f}x")
        return "\n".join(lines)


# ------------------------------------------------------ batch telemetry
class BatchTelemetry:
    """Accounting for :func:`repro.batch.engine.evaluate_scenarios`.

    Tracks how many scenarios each backend actually served, how many of
    those were honest fallbacks to the event engine, and the shape of
    the vectorised work (kernel passes and total SoA lanes).  A healthy
    batch run over solvable scenario classes should report a batched
    rate near 1.0; a low rate means the workload's shapes are outside
    the closed forms and the batch layer is mostly delegating.
    """

    def __init__(self) -> None:
        self.scenarios = 0
        self.batched = 0
        self.fallbacks = 0
        self.kernel_calls = 0
        self.kernel_lanes = 0
        self.by_case: dict[str, int] = {}

    # -- recording -----------------------------------------------------
    def record_scenario(self, case: str, backend: str, fallback: bool) -> None:
        """One scenario's final outcome: class, serving backend, fallback."""
        self.scenarios += 1
        self.by_case[case] = self.by_case.get(case, 0) + 1
        if fallback:
            self.fallbacks += 1
        elif backend != "event":
            self.batched += 1

    def record_kernel(self, lanes: int) -> None:
        """One vectorised solver pass over ``lanes`` scenario lanes."""
        self.kernel_calls += 1
        self.kernel_lanes += lanes

    # -- derived -------------------------------------------------------
    @property
    def batched_rate(self) -> float | None:
        """Closed-form share of scenarios, or ``None`` before any ran."""
        if self.scenarios == 0:
            return None
        return self.batched / self.scenarios

    @property
    def mean_lanes_per_call(self) -> float | None:
        """Average SoA width per kernel pass (the amortisation factor)."""
        if self.kernel_calls == 0:
            return None
        return self.kernel_lanes / self.kernel_calls

    def as_dict(self) -> dict[str, float]:
        """Counter snapshot for :class:`repro.telemetry.registry.
        MetricsRegistry` (per-case detail flattens to keyed counters)."""
        out = {
            "scenarios": self.scenarios,
            "batched": self.batched,
            "fallbacks": self.fallbacks,
            "kernel_calls": self.kernel_calls,
            "kernel_lanes": self.kernel_lanes,
        }
        for case, n in sorted(self.by_case.items()):
            out[f"case_{case}"] = n
        rate = self.batched_rate
        if rate is not None:
            out["batched_rate"] = rate
        lanes = self.mean_lanes_per_call
        if lanes is not None:
            out["mean_lanes_per_call"] = lanes
        return out

    def merge(self, other: "BatchTelemetry") -> "BatchTelemetry":
        """Fold another telemetry object into this one (returns self)."""
        self.scenarios += other.scenarios
        self.batched += other.batched
        self.fallbacks += other.fallbacks
        self.kernel_calls += other.kernel_calls
        self.kernel_lanes += other.kernel_lanes
        for case, n in other.by_case.items():
            self.by_case[case] = self.by_case.get(case, 0) + n
        return self

    def render(self) -> str:
        """Human-readable batch-evaluation summary."""
        lines = [
            f"batch telemetry: {self.scenarios} scenario(s), "
            f"{self.batched} closed-form, {self.fallbacks} fallback(s)"
        ]
        if self.by_case:
            detail = ", ".join(
                f"{case}={n}" for case, n in sorted(self.by_case.items())
            )
            lines.append(f"  by class: {detail}")
        lanes = self.mean_lanes_per_call
        if lanes is not None:
            lines.append(
                f"  kernel: {self.kernel_calls} pass(es) over "
                f"{self.kernel_lanes} lane(s) ({lanes:.1f} lanes/pass)"
            )
        return "\n".join(lines)
