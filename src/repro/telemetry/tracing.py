"""Span-based structured tracing with Chrome trace-event export.

The paper's method is built on *observing* runs — Wattsup power
traces, perf counters, dstat rows (§2.5, §3.1) — and the reproduction
grew the same need: the engine, the ECoST controller, the fault
injector, and the parallel sweep executor each produce events worth
seeing on one timeline.  This module is the shared substrate: a
:class:`Tracer` collects *spans* (named intervals with a category, a
process/thread placement, and structured args) plus instant and
counter events, and renders them to the Chrome trace-event JSON format
that Perfetto / ``about://tracing`` load directly.

Placement convention
--------------------
Chrome traces organise events into *processes* (pid) and *threads*
(tid).  We map simulation structure onto that hierarchy:

* pid ``0`` — the cluster row: scheduler/controller decisions, fault
  events, queue-depth counters.
* pid ``1 + node_id`` — one process per node; each job's lifetime span
  lives on tid ``job_id`` so co-resident jobs render as parallel rows.
* pid :data:`SWEEP_PID` — the (wall-clock) sweep-executor row; worker
  ids become thread rows.

Zero-overhead guarantee
-----------------------
Every instrumented hot path guards with ``if tracer.enabled:`` before
building args dicts, and the default tracer everywhere is the
:data:`NULL_TRACER` singleton whose methods are no-ops — a run with
tracing disabled performs one attribute read per *membership change*
(not per event) and allocates nothing.  Tracing is also purely
observational: it draws no random numbers and never touches engine
state, so enabling it cannot perturb a seeded run (pinned by
``tests/test_tracing.py`` and the golden byte-identity suite).

Timestamps are simulation seconds (wall seconds for the sweep
executor), scaled to microseconds on export as the trace-event format
expects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

#: Process row hosting wall-clock sweep-executor spans.
SWEEP_PID = 10_000

#: Microseconds per timestamp unit (trace events use µs).
_TS_SCALE = 1e6


@dataclass(frozen=True)
class Span:
    """One named interval on the trace timeline."""

    name: str
    cat: str
    start: float  # seconds
    end: float  # seconds
    pid: int = 0
    tid: int = 0
    args: Mapping[str, Any] | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """One zero-duration marker."""

    name: str
    cat: str
    t: float
    pid: int = 0
    tid: int = 0
    args: Mapping[str, Any] | None = None


@dataclass(frozen=True)
class Counter:
    """One sample of a named counter series."""

    name: str
    t: float
    values: Mapping[str, float]
    pid: int = 0


class Tracer:
    """Collects spans/instants/counters; exports Chrome trace JSON.

    The tracer is append-only and order-independent: events may arrive
    out of timestamp order (nodes advance lazily) and are sorted on
    export.  All record methods are cheap (one dataclass append); the
    *caller* owns the ``if tracer.enabled:`` guard so that disabled
    runs skip argument construction entirely.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.counters: list[Counter] = []
        self._process_names: dict[int, str] = {}
        self._thread_names: dict[tuple[int, int], str] = {}

    # ----------------------------------------------------------- record
    def span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        *,
        pid: int = 0,
        tid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a complete interval (``end`` may equal ``start``)."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        self.spans.append(
            Span(name=name, cat=cat, start=start, end=end, pid=pid, tid=tid, args=args)
        )

    def instant(
        self,
        name: str,
        cat: str,
        t: float,
        *,
        pid: int = 0,
        tid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        self.instants.append(
            Instant(name=name, cat=cat, t=t, pid=pid, tid=tid, args=args)
        )

    def counter(
        self,
        name: str,
        t: float,
        values: Mapping[str, float],
        *,
        pid: int = 0,
    ) -> None:
        self.counters.append(Counter(name=name, t=t, values=dict(values), pid=pid))

    def name_process(self, pid: int, name: str) -> None:
        self._process_names[pid] = name

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name

    # ------------------------------------------------------------ query
    @property
    def n_events(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    def spans_by_cat(self, cat: str) -> list[Span]:
        """Spans of one category, sorted by start time."""
        return sorted(
            (s for s in self.spans if s.cat == cat), key=lambda s: (s.start, s.end)
        )

    # ----------------------------------------------------------- export
    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Uses the *JSON object format* (``{"traceEvents": [...]}``):
        complete events (``ph="X"``) for spans, instants (``ph="i"``),
        counters (``ph="C"``) and metadata events (``ph="M"``) naming
        the process/thread rows.  Timestamps are microseconds.
        """
        events: list[dict] = []
        for pid, name in sorted(self._process_names.items()):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for (pid, tid), name in sorted(self._thread_names.items()):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        timed: list[tuple[float, int, dict]] = []
        for s in self.spans:
            ev = {
                "ph": "X",
                "name": s.name,
                "cat": s.cat,
                "ts": s.start * _TS_SCALE,
                "dur": s.duration * _TS_SCALE,
                "pid": s.pid,
                "tid": s.tid,
            }
            if s.args:
                ev["args"] = dict(s.args)
            timed.append((s.start, 0, ev))
        for i in self.instants:
            ev = {
                "ph": "i",
                "s": "t",
                "name": i.name,
                "cat": i.cat,
                "ts": i.t * _TS_SCALE,
                "pid": i.pid,
                "tid": i.tid,
            }
            if i.args:
                ev["args"] = dict(i.args)
            timed.append((i.t, 1, ev))
        for c in self.counters:
            timed.append(
                (
                    c.t,
                    2,
                    {
                        "ph": "C",
                        "name": c.name,
                        "ts": c.t * _TS_SCALE,
                        "pid": c.pid,
                        "args": dict(c.values),
                    },
                )
            )
        timed.sort(key=lambda e: (e[0], e[1]))
        events.extend(ev for _t, _k, ev in timed)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        """Serialise :meth:`to_chrome` to ``path``; returns the path."""
        path = Path(path)
        # default=str: arg values are usually primitives, but exotic
        # ones (enums, configs) degrade to their repr instead of
        # aborting the export.
        path.write_text(json.dumps(self.to_chrome(), default=str) + "\n")
        return path


class NullTracer:
    """The disabled tracer: every record method is a no-op.

    ``enabled`` is False so instrumented code can skip argument
    construction; calling the methods anyway is still safe (and free of
    allocation).  A single shared instance (:data:`NULL_TRACER`) is the
    default everywhere.
    """

    __slots__ = ()
    enabled = False

    def span(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def name_process(self, *args, **kwargs) -> None:
        pass

    def name_thread(self, *args, **kwargs) -> None:
        pass

    @property
    def n_events(self) -> int:
        return 0


#: Shared disabled tracer — the default for every instrumented layer.
NULL_TRACER = NullTracer()


# ------------------------------------------------------------ validation
_PHASES = {"X", "i", "C", "M", "B", "E", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(payload: object) -> list[str]:
    """Structural validation of a Chrome trace-event JSON object.

    Returns a list of problems (empty = valid).  Checks the containment
    contract Perfetto relies on: the object format envelope, required
    per-phase fields, numeric non-negative timestamps/durations, and
    args being objects.  Used by the CI trace-smoke job and the test
    suite; intentionally dependency-free.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"trace must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: missing integer 'pid'")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'dur' must be a non-negative number")
        if ph == "i" and ev.get("s") not in (None, "g", "p", "t"):
            errors.append(f"{where}: instant scope must be one of g/p/t")
        if ph in ("C", "M") and not isinstance(ev.get("args"), dict):
            errors.append(f"{where}: phase {ph!r} requires an 'args' object")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors
