"""Simulated ``perf``: multiplexed PMU counter sampling.

The Atom's PMU has two general-purpose counters, so collecting the
paper's event list requires multiplexing: perf rotates event groups
onto the hardware counters and scales each observation by its enabled
fraction.  Multiplexing is why the paper runs each workload several
times for accurate numbers (§2.5) — scaled estimates carry sampling
error that shrinks with observation time.

We reproduce that behaviour: ground-truth event rates come from the
cost kernel, each event group is observed for ``1/n_groups`` of the
run, and the reported value is the scaled estimate with a relative
error of ``sigma / sqrt(observed_seconds)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.costmodel import standalone_metrics
from repro.utils.rng import SeedLike, rng_from
from repro.workloads.base import AppInstance

#: PMU events perf collects, grouped as they fit on the two counters.
PMU_EVENTS: tuple[tuple[str, ...], ...] = (
    ("instructions", "cycles"),
    ("LLC-load-misses", "L1-icache-load-misses"),
    ("branch-misses", "L1-dcache-load-misses"),
    ("context-switches", "page-faults"),
)


@dataclass(frozen=True)
class PerfReport:
    """One perf run: scaled event totals plus derived rates."""

    duration_s: float
    counts: Mapping[str, float]
    enabled_fraction: float

    @property
    def ipc(self) -> float:
        cycles = self.counts["cycles"]
        if cycles <= 0:
            raise ValueError("no cycles recorded")
        return self.counts["instructions"] / cycles

    def mpki(self, event: str) -> float:
        """Misses per kilo-instruction for a miss event."""
        instr = self.counts["instructions"]
        if instr <= 0:
            raise ValueError("no instructions recorded")
        return self.counts[event] / instr * 1000.0


class PerfSampler:
    """Samples PMU events for a job running under a configuration."""

    def __init__(
        self,
        node: NodeSpec = ATOM_C2758,
        *,
        constants: SimConstants = DEFAULT_CONSTANTS,
        noise_sigma: float = 0.15,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        self.node = node
        self.constants = constants
        self.noise_sigma = noise_sigma

    def _ground_truth_rates(self, instance: AppInstance, frequency: float,
                            block_size: int, n_mappers: int) -> dict[str, float]:
        """True per-second event rates from the cost kernel."""
        p = instance.profile
        jm = standalone_metrics(
            p, instance.data_bytes, frequency, block_size, n_mappers,
            node=self.node, constants=self.constants,
        )
        duration = float(np.asarray(jm.duration))
        instr_total = instance.data_bytes * (
            p.instructions_per_byte + p.shuffle_factor * p.reduce_instr_per_byte
        )
        instr_rate = instr_total / duration
        ipc_eff = self.node.core.effective_ipc(
            frequency, p.cpi0, float(np.asarray(jm.mpki_eff))
        )
        m_eff = float(np.asarray(jm.m_eff))
        u_cpu = float(np.asarray(jm.u_cpu))
        cycle_rate = frequency * m_eff * u_cpu
        return {
            "instructions": instr_rate,
            "cycles": instr_rate / float(ipc_eff),
            "LLC-load-misses": instr_rate * float(np.asarray(jm.mpki_eff)) / 1000.0,
            "L1-icache-load-misses": instr_rate * p.icache_mpki / 1000.0,
            "branch-misses": instr_rate * p.branch_mpki / 1000.0,
            "L1-dcache-load-misses": instr_rate * (p.llc_mpki0 * 2.5 + 1.0) / 1000.0,
            "context-switches": 120.0 * m_eff + 400.0 * float(np.asarray(jm.u_disk)),
            "page-faults": 30.0 * m_eff + instance.profile.footprint_per_task / 2**22,
            "_cycle_rate": cycle_rate,
            "_duration": duration,
        }

    def sample(
        self,
        instance: AppInstance,
        frequency: float,
        block_size: int,
        n_mappers: int,
        *,
        duration_s: float | None = None,
        seed: SeedLike = None,
    ) -> PerfReport:
        """One perf observation window (default: the learning period).

        Each PMU group is live for ``1/len(PMU_EVENTS)`` of the window;
        reported totals are the scaled estimates with multiplexing
        noise that shrinks as ``1/sqrt(observed_time)``.
        """
        rng = rng_from(seed)
        rates = self._ground_truth_rates(instance, frequency, block_size, n_mappers)
        window = duration_s if duration_s is not None else min(
            self.constants.learning_period_s, rates["_duration"]
        )
        if window <= 0:
            raise ValueError("observation window must be positive")
        n_groups = len(PMU_EVENTS)
        observed = window / n_groups
        counts: dict[str, float] = {}
        for group in PMU_EVENTS:
            for event in group:
                true_total = rates[event] * window
                rel_err = self.noise_sigma / np.sqrt(max(observed, 1e-9))
                counts[event] = max(true_total * (1.0 + rng.normal(0.0, rel_err)), 0.0)
        return PerfReport(
            duration_s=window, counts=counts, enabled_fraction=1.0 / n_groups
        )
