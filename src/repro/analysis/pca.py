"""Principal component analysis, implemented on the SVD.

The paper uses PCA to project its 14 gathered metrics into a space
where the dominant, uncorrelated directions of variation are explicit,
keeping the first two components (85.22% of variance in the paper) for
the Figure 1 scatter.  PCA is scale-sensitive, so inputs are expected
to be unit-normal scaled (§3.2); :func:`repro.analysis.features.zscore`
does that.

Implementation note: we use the thin SVD of the centred data matrix
rather than an eigendecomposition of the covariance — numerically
stabler and, per the HPC guides, the `full_matrices=False` form avoids
materialising the large orthogonal factors.
"""

from __future__ import annotations

import numpy as np


class PCA:
    """Principal component analysis via thin SVD.

    Attributes (after :meth:`fit`)
    ------------------------------
    components_:
        ``(n_components, n_features)`` — rows are principal axes.
    explained_variance_ratio_:
        Fraction of total variance captured by each component.
    mean_:
        Per-feature means removed before projection.
    """

    def __init__(self, n_components: int | None = None) -> None:
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.singular_values_: np.ndarray | None = None
        self.mean_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "PCA":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D (samples × features)")
        n, d = X.shape
        if n < 2:
            raise ValueError("need at least 2 samples")
        k = self.n_components if self.n_components is not None else min(n, d)
        if k > min(n, d):
            raise ValueError(
                f"n_components={k} exceeds min(n_samples, n_features)={min(n, d)}"
            )
        self.mean_ = X.mean(axis=0)
        Xc = X - self.mean_
        # Thin SVD: Xc = U S Vt; principal axes are rows of Vt.
        _u, s, vt = np.linalg.svd(Xc, full_matrices=False)
        var = s**2 / (n - 1)
        total = var.sum()
        if total <= 0:
            raise ValueError("data has zero variance")
        self.components_ = vt[:k]
        self.singular_values_ = s[:k]
        self.explained_variance_ = var[:k]
        self.explained_variance_ratio_ = var[:k] / total
        return self

    def _check_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted; call fit() first")

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project samples onto the principal axes (scores)."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, scores: np.ndarray) -> np.ndarray:
        """Reconstruct samples from scores (lossy if k < d)."""
        self._check_fitted()
        return np.asarray(scores, dtype=float) @ self.components_ + self.mean_

    def feature_loadings(self, component: int = 0) -> np.ndarray:
        """The weights of each original feature on one component."""
        self._check_fitted()
        if not 0 <= component < len(self.components_):
            raise IndexError(f"component {component} out of range")
        return self.components_[component]
