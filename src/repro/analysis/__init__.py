"""Application characterisation: PCA, clustering, classification (§3).

Implements the paper's methodology from scratch on NumPy:

* unit-normal feature scaling and the 14-feature matrix
  (:mod:`repro.analysis.features`),
* principal component analysis via SVD (:mod:`repro.analysis.pca`),
* agglomerative hierarchical clustering of *features* to pick the
  7 distinct representative counters (:mod:`repro.analysis.hcluster`),
* the C/H/I/M application classifier (:mod:`repro.analysis.classify`).
"""

from repro.analysis.features import FeatureMatrix, build_feature_matrix, zscore
from repro.analysis.pca import PCA
from repro.analysis.hcluster import AgglomerativeClustering, fcluster_by_count
from repro.analysis.classify import (
    AppClassifier,
    RuleBasedClassifier,
    NearestCentroidClassifier,
)

__all__ = [
    "FeatureMatrix",
    "build_feature_matrix",
    "zscore",
    "PCA",
    "AgglomerativeClustering",
    "fcluster_by_count",
    "AppClassifier",
    "RuleBasedClassifier",
    "NearestCentroidClassifier",
]
