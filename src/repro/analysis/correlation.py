"""Counter-correlation analysis (§3.2's motivation, made explicit).

The paper notes "substantial debate about what hardware counter event
can accurately indicate performance" and uses PCA/clustering to pick a
minimal counter set.  This module makes the underlying evidence
explicit: Pearson correlations between every collected feature and the
performance/energy outcomes, plus the feature-feature redundancy
matrix that justifies dropping co-linear counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.features import FeatureMatrix
from repro.model.sweep import sweep_solo
from repro.utils.tables import render_table


def pearson_matrix(X: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlations of columns (constant cols → 0)."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[0] < 2:
        raise ValueError("X must be 2-D with at least 2 rows")
    Xc = X - X.mean(axis=0)
    std = Xc.std(axis=0)
    safe = np.where(std < 1e-12, 1.0, std)
    Z = Xc / safe
    corr = (Z.T @ Z) / X.shape[0]
    # Zero out correlations involving constant columns; unit diagonal.
    const = std < 1e-12
    corr[const, :] = 0.0
    corr[:, const] = 0.0
    np.fill_diagonal(corr, 1.0)
    return corr


@dataclass(frozen=True)
class CorrelationReport:
    """Feature ↔ outcome and feature ↔ feature correlation analysis."""

    feature_names: tuple[str, ...]
    outcome_names: tuple[str, ...]
    outcome_corr: np.ndarray  # (n_features, n_outcomes)
    feature_corr: np.ndarray  # (n_features, n_features)
    redundancy_threshold: float

    def redundant_pairs(self) -> list[tuple[str, str, float]]:
        """Feature pairs more correlated than the threshold."""
        out = []
        n = len(self.feature_names)
        for i in range(n):
            for j in range(i + 1, n):
                r = float(self.feature_corr[i, j])
                if abs(r) >= self.redundancy_threshold:
                    out.append((self.feature_names[i], self.feature_names[j], r))
        return sorted(out, key=lambda t: -abs(t[2]))

    def best_single_indicator(self, outcome: str) -> tuple[str, float]:
        """The feature most correlated with one outcome."""
        j = self.outcome_names.index(outcome)
        i = int(np.argmax(np.abs(self.outcome_corr[:, j])))
        return self.feature_names[i], float(self.outcome_corr[i, j])

    def render(self) -> str:
        rows = [
            [name] + [float(self.outcome_corr[i, j]) for j in range(len(self.outcome_names))]
            for i, name in enumerate(self.feature_names)
        ]
        table = render_table(
            ["feature"] + list(self.outcome_names),
            rows,
            title="Feature ↔ outcome Pearson correlations",
            floatfmt="+.2f",
        )
        red = self.redundant_pairs()
        red_rows = [[a, b, r] for a, b, r in red] or [["(none)", "", 0.0]]
        red_table = render_table(
            ["feature A", "feature B", "r"],
            red_rows,
            title=f"Redundant counter pairs (|r| >= {self.redundancy_threshold})",
            floatfmt="+.2f",
        )
        return table + "\n\n" + red_table


def correlate_with_outcomes(
    matrix: FeatureMatrix,
    *,
    redundancy_threshold: float = 0.9,
) -> CorrelationReport:
    """Correlate the profiled features with tuned runtime/power/EDP.

    Outcomes come from each instance's oracle-tuned solo execution —
    the quantity a scheduler ultimately cares about predicting.
    """
    outcomes = []
    for inst in matrix.instances:
        sweep = sweep_solo(inst)
        i = sweep.best_index
        outcomes.append(
            [
                float(sweep.metrics.duration[i]),
                float(sweep.metrics.power[i]),
                float(np.log(sweep.metrics.edp[i])),
            ]
        )
    Y = np.asarray(outcomes)
    joint = np.hstack([matrix.scaled, (Y - Y.mean(axis=0)) / Y.std(axis=0)])
    corr = pearson_matrix(joint)
    nf = matrix.scaled.shape[1]
    return CorrelationReport(
        feature_names=matrix.names,
        outcome_names=("runtime", "power", "log_edp"),
        outcome_corr=corr[:nf, nf:],
        feature_corr=corr[:nf, :nf],
        redundancy_threshold=redundancy_threshold,
    )
