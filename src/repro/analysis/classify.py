"""The incoming-application analyser/classifier (ECoST Step 1, §5).

Tags an unknown application with one of the four classes —
compute-bound (C), hybrid (H), I/O-bound (I), memory-bound (M) — from
its learning-period feature vector.  Two implementations:

* :class:`RuleBasedClassifier` — the paper's §3.2/§6.1 narrative rules
  ("CPU user above average with low iowait and I/O rates → compute
  intensive"), useful as an interpretable reference;
* :class:`NearestCentroidClassifier` — classifies against the known
  *training* applications' class centroids in scaled feature space,
  which is how ECoST handles genuinely unknown apps (§5 Step 1:
  "classifies the application based on the characteristics of known
  (training) applications").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.analysis.features import FeatureMatrix, Scaler
from repro.telemetry.profiling import FEATURE_NAMES
from repro.workloads.base import AppClass


class AppClassifier(Protocol):
    """Anything that maps a 14-feature dict to an :class:`AppClass`."""

    def classify(self, features: Mapping[str, float]) -> AppClass: ...


@dataclass(frozen=True)
class RuleBasedClassifier:
    """Threshold rules mirroring the paper's characterisation prose.

    Order matters: memory-bound behaviour (pathological LLC miss rates)
    dominates, then I/O wait, then the compute/hybrid split.
    """

    memory_llc_mpki: float = 4.0
    io_wait_pct: float = 40.0
    compute_user_pct: float = 80.0
    compute_llc_mpki: float = 1.6

    def classify(self, features: Mapping[str, float]) -> AppClass:
        llc = features["llc_mpki"]
        iowait = features["cpu_iowait"]
        user = features["cpu_user"]
        if llc >= self.memory_llc_mpki:
            return AppClass.MEMORY
        if iowait >= self.io_wait_pct:
            return AppClass.IO
        if user >= self.compute_user_pct and llc < self.compute_llc_mpki:
            return AppClass.COMPUTE
        return AppClass.HYBRID


class NearestCentroidClassifier:
    """Nearest class centroid in unit-normal feature space.

    Fitted from the training applications' feature matrix and their
    known class labels; unknown apps inherit the class of the closest
    centroid (Euclidean distance over all 14 scaled features).
    """

    def __init__(self) -> None:
        self._centroids: dict[AppClass, np.ndarray] | None = None
        self._scaler: Scaler | None = None

    def fit(
        self, matrix: FeatureMatrix, labels: Sequence[AppClass]
    ) -> "NearestCentroidClassifier":
        if len(labels) != matrix.n_instances:
            raise ValueError("one label per feature-matrix row required")
        centroids: dict[AppClass, np.ndarray] = {}
        labels_arr = np.array([l.value for l in labels])
        for cls in set(labels):
            idx = np.flatnonzero(labels_arr == cls.value)
            centroids[cls] = matrix.scaled[idx].mean(axis=0)
        self._centroids = centroids
        self._scaler = matrix.scaler
        return self

    @property
    def classes_(self) -> list[AppClass]:
        if self._centroids is None:
            raise RuntimeError("classifier is not fitted")
        return sorted(self._centroids, key=lambda c: c.value)

    def classify(self, features: Mapping[str, float]) -> AppClass:
        if self._centroids is None or self._scaler is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        x = np.array([features[n] for n in FEATURE_NAMES], dtype=float)
        z = self._scaler.transform(x)
        best = None
        best_d = np.inf
        for cls, centroid in self._centroids.items():
            d = float(np.linalg.norm(z - centroid))
            if d < best_d:
                best, best_d = cls, d
        assert best is not None
        return best

    def distances(self, features: Mapping[str, float]) -> dict[AppClass, float]:
        """Distance to every class centroid (diagnostics)."""
        if self._centroids is None or self._scaler is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        x = np.array([features[n] for n in FEATURE_NAMES], dtype=float)
        z = self._scaler.transform(x)
        return {
            cls: float(np.linalg.norm(z - centroid))
            for cls, centroid in self._centroids.items()
        }
