"""Agglomerative hierarchical clustering, from scratch.

The paper clusters *feature metrics* (not applications) after PCA to
group counters that behave alike and keep one representative per group
— reducing 14 collected metrics to the 7 distinct ones that a single
non-multiplexed perf run can cover (§3.2).

Implements standard bottom-up agglomeration with selectable linkage
(average / single / complete) over Euclidean distances, producing a
SciPy-style merge history that :func:`fcluster_by_count` cuts into a
flat clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: clusters ``a`` and ``b`` join at ``distance``."""

    a: int
    b: int
    distance: float
    size: int  # resulting cluster size


_LINKAGES = ("average", "single", "complete")


class AgglomerativeClustering:
    """Bottom-up hierarchical clustering with Lance-Williams updates."""

    def __init__(self, linkage: str = "average") -> None:
        if linkage not in _LINKAGES:
            raise ValueError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
        self.linkage = linkage
        self.merges_: list[Merge] | None = None
        self.n_samples_: int | None = None

    def fit(self, X: np.ndarray) -> "AgglomerativeClustering":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D (samples × features)")
        n = X.shape[0]
        if n < 2:
            raise ValueError("need at least 2 samples")
        # Pairwise distances, vectorised: ||a-b||² = |a|² + |b|² − 2a·b.
        sq = np.einsum("ij,ij->i", X, X)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
        dist = np.sqrt(np.maximum(d2, 0.0))
        np.fill_diagonal(dist, np.inf)

        active = list(range(n))
        sizes = {i: 1 for i in range(n)}
        # Distance matrix grows as clusters are created; index by id.
        D = {(min(i, j), max(i, j)): dist[i, j] for i in range(n) for j in range(i + 1, n)}
        merges: list[Merge] = []
        next_id = n
        while len(active) > 1:
            (a, b), dmin = min(
                ((pair, D[pair]) for pair in D
                 if pair[0] in sizes and pair[1] in sizes
                 and pair[0] in active and pair[1] in active),
                key=lambda kv: kv[1],
            )
            new = next_id
            next_id += 1
            sa, sb = sizes[a], sizes[b]
            merges.append(Merge(a=a, b=b, distance=float(dmin), size=sa + sb))
            active.remove(a)
            active.remove(b)
            for c in active:
                dac = D.pop((min(a, c), max(a, c)))
                dbc = D.pop((min(b, c), max(b, c)))
                if self.linkage == "single":
                    dnew = min(dac, dbc)
                elif self.linkage == "complete":
                    dnew = max(dac, dbc)
                else:  # average
                    dnew = (sa * dac + sb * dbc) / (sa + sb)
                D[(min(new, c), max(new, c))] = dnew
            D.pop((min(a, b), max(a, b)), None)
            sizes[new] = sa + sb
            active.append(new)
        self.merges_ = merges
        self.n_samples_ = n
        return self

    def labels_for(self, n_clusters: int) -> np.ndarray:
        """Flat labels after cutting the dendrogram at ``n_clusters``."""
        if self.merges_ is None or self.n_samples_ is None:
            raise RuntimeError("clustering is not fitted; call fit() first")
        return fcluster_by_count(self.merges_, self.n_samples_, n_clusters)


def fcluster_by_count(
    merges: list[Merge], n_samples: int, n_clusters: int
) -> np.ndarray:
    """Cut a merge history so exactly ``n_clusters`` clusters remain.

    Labels are 0-based and renumbered in order of first appearance.
    """
    if not 1 <= n_clusters <= n_samples:
        raise ValueError(
            f"n_clusters must be in [1, {n_samples}], got {n_clusters}"
        )
    # Union-find replay of the first (n_samples - n_clusters) merges.
    parent = list(range(n_samples + len(merges)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for step, m in enumerate(merges):
        if step >= n_samples - n_clusters:
            break
        new = n_samples + step
        parent[find(m.a)] = new
        parent[find(m.b)] = new

    roots: dict[int, int] = {}
    labels = np.empty(n_samples, dtype=int)
    for i in range(n_samples):
        r = find(i)
        if r not in roots:
            roots[r] = len(roots)
        labels[i] = roots[r]
    return labels


def representatives(
    X: np.ndarray, labels: np.ndarray
) -> list[int]:
    """One representative sample index per cluster (nearest to centroid)."""
    X = np.asarray(X, dtype=float)
    labels = np.asarray(labels)
    reps = []
    for lab in sorted(set(labels.tolist())):
        idx = np.flatnonzero(labels == lab)
        centroid = X[idx].mean(axis=0)
        d = np.linalg.norm(X[idx] - centroid, axis=1)
        reps.append(int(idx[np.argmin(d)]))
    return reps
