"""Feature-matrix construction and unit-normal scaling (§3.2, §6.1).

The feature matrix (FM) has one row per profiled application instance
and one column per collected metric.  The paper normalises "to the
unit normal distribution" before PCA so no metric dominates through
its unit; :func:`zscore` implements that and remembers its statistics
so unknown applications are projected consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.telemetry.profiling import FEATURE_NAMES, feature_vector, profile_features
from repro.utils.rng import SeedLike
from repro.utils.units import GHZ, MB
from repro.workloads.base import AppInstance

#: The configuration used for profiling runs (a fixed, known setting —
#: features must be comparable across applications).
PROFILING_CONFIG = JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=8)


@dataclass(frozen=True)
class Scaler:
    """Remembered z-score statistics."""

    mean: np.ndarray
    std: np.ndarray

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return (X - self.mean) / self.std

    def inverse(self, Z: np.ndarray) -> np.ndarray:
        return np.asarray(Z, dtype=float) * self.std + self.mean


def zscore(X: np.ndarray) -> tuple[np.ndarray, Scaler]:
    """Scale columns to zero mean / unit variance.

    Constant columns scale to zero (std is floored at machine epsilon
    scale) rather than dividing by zero.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    scaler = Scaler(mean=mean, std=std)
    return scaler.transform(X), scaler


@dataclass(frozen=True)
class FeatureMatrix:
    """Profiled features for a set of application instances."""

    instances: tuple[AppInstance, ...]
    names: tuple[str, ...]
    raw: np.ndarray  # (n_instances, n_features), unscaled
    scaled: np.ndarray  # unit-normal columns
    scaler: Scaler

    def row_for(self, label: str) -> np.ndarray:
        """Scaled feature row of the instance with the given label."""
        for i, inst in enumerate(self.instances):
            if inst.label == label:
                return self.scaled[i]
        raise KeyError(f"no instance {label!r} in the feature matrix")

    def column(self, name: str, *, scaled: bool = True) -> np.ndarray:
        try:
            j = self.names.index(name)
        except ValueError:
            raise KeyError(f"no feature {name!r}") from None
        return (self.scaled if scaled else self.raw)[:, j]

    @property
    def n_instances(self) -> int:
        return len(self.instances)


def build_feature_matrix(
    instances: Sequence[AppInstance],
    *,
    config: JobConfig = PROFILING_CONFIG,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: SeedLike = 0,
) -> FeatureMatrix:
    """Profile every instance and assemble the scaled feature matrix."""
    if not instances:
        raise ValueError("need at least one instance")
    rows = []
    for inst in instances:
        feats = profile_features(inst, config, node=node, constants=constants, seed=seed)
        rows.append(feature_vector(feats))
    raw = np.vstack(rows)
    scaled, scaler = zscore(raw)
    return FeatureMatrix(
        instances=tuple(instances),
        names=FEATURE_NAMES,
        raw=raw,
        scaled=scaled,
        scaler=scaler,
    )
