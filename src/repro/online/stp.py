"""OnlineSTP: a fitted MLM-STP that keeps learning from telemetry.

The wrapper owns a deep copy of a fitted
:class:`~repro.core.stp.MLMSTP` and keeps it current three ways:

* **partial_fit** — every completed pairing contributes one model row
  (both applications' reduced features + sizes + the six placed
  knobs → observed pair EDP).  The linear model absorbs the row with
  an exact Sherman–Morrison update (:class:`~repro.online.updates.
  OnlineRidge`); the tree/MLP models buffer it in a bounded
  :class:`~repro.online.updates.SlidingWindow` and refresh every
  ``refresh_every`` rows.
* **drift detection** — the |log-EDP residual| of each observation
  feeds a :class:`~repro.online.drift.PageHinkley` test; an alarm
  triggers :meth:`refit`.
* **refit** — re-enters the paper's learning period: the most recent
  distinct pairings are re-swept (bounded by ``relearn_pairs``, each
  contributing ``relearn_rows`` sampled grid rows including the
  optimum), their descriptors extend the projection manifold, and the
  model is refit on the window.  Budget the recent pairs leave
  unspent stays open for *first-sight* sweeps: a never-swept pairing
  encountered at decision time is swept on the spot
  (:meth:`OnlineSTP.observe_pair`), so applications that first appear
  after the alarm are learned without waiting for a second alarm.
  Each sweep also records the pair's tuned optimum as a fresh
  database entry in the paper's sense — ``predict_configs`` serves
  profiled pairings LkT-style from that memo and falls back to the
  model for everything else.  This is the routine
  ``ECoSTController.on_cluster_change`` now routes to — previously it
  only logged "re-entering learning period" while the model stayed
  stale.

Everything is seeded and free of wall-clock reads: two runs over the
same observation stream produce identical models.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.stp import AppDescriptor, MLMSTP, _canonical_order, _row_block
from repro.mapreduce.job import JobResult
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.sweep import sweep_pair
from repro.online.drift import PageHinkley
from repro.online.updates import OnlineRidge, SlidingWindow
from repro.telemetry.profiling import OnlineTelemetry
from repro.utils.rng import SeedLike, rng_from
from repro.workloads.base import AppInstance


@dataclass(frozen=True)
class PairObservation:
    """One completed co-located pairing, as the model sees it.

    Descriptors and configurations are in canonical STP order (the
    same orientation ``MLMSTP.predict_configs`` trains and predicts
    in); ``edp`` is the observed pair EDP — joint energy times the
    span from the earlier start to the later finish.
    """

    t: float
    desc_a: AppDescriptor
    desc_b: AppDescriptor
    inst_a: AppInstance
    inst_b: AppInstance
    cfg_a: JobConfig
    cfg_b: JobConfig
    edp: float
    #: True when both jobs started together (an empty-node pairing).
    #: Partner-fill observations span back to the running job's start,
    #: so their EDP mixes in earlier co-runs and queue time — usable
    #: for drift detection, too noisy to be a model row.
    synchronized: bool = True


@dataclass
class _OpenDecision:
    """A pairing decision waiting for its two job completions."""

    t: float
    desc_a: AppDescriptor
    desc_b: AppDescriptor
    inst_a: AppInstance
    inst_b: AppInstance
    job_a: int
    job_b: int
    results: dict[int, JobResult] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.job_a in self.results and self.job_b in self.results

    def observation(self) -> PairObservation:
        ra, rb = self.results[self.job_a], self.results[self.job_b]
        energy = ra.energy_joules + rb.energy_joules
        span = max(ra.finish_time, rb.finish_time) - min(
            ra.start_time, rb.start_time
        )
        return _canonicalize(
            PairObservation(
                t=self.t,
                desc_a=self.desc_a,
                desc_b=self.desc_b,
                inst_a=self.inst_a,
                inst_b=self.inst_b,
                cfg_a=ra.spec.config,
                cfg_b=rb.spec.config,
                edp=float(energy * span),
                synchronized=abs(ra.start_time - rb.start_time) < 1e-9,
            )
        )


def _canonicalize(obs: PairObservation) -> PairObservation:
    """Swap the pair into canonical STP orientation if needed."""
    if _canonical_order(obs.desc_a, obs.desc_b):
        return obs
    return PairObservation(
        t=obs.t,
        desc_a=obs.desc_b,
        desc_b=obs.desc_a,
        inst_a=obs.inst_b,
        inst_b=obs.inst_a,
        cfg_a=obs.cfg_b,
        cfg_b=obs.cfg_a,
        edp=obs.edp,
        synchronized=obs.synchronized,
    )


class PairingBook:
    """Matches the controller's pairing decisions to job completions.

    A running application can appear in several successive decisions
    (each partner fill opens a new one); its single completion closes
    all of them.  Delivery is idempotent — a result re-delivered by a
    second harvest path (controller *and* service both notify) finds
    its decisions already closed and is a no-op.
    """

    def __init__(self) -> None:
        self._by_job: dict[int, list[_OpenDecision]] = {}

    def note(
        self,
        *,
        t: float,
        desc_a: AppDescriptor,
        desc_b: AppDescriptor,
        inst_a: AppInstance,
        inst_b: AppInstance,
        job_a: int,
        job_b: int,
    ) -> None:
        decision = _OpenDecision(
            t=t,
            desc_a=desc_a,
            desc_b=desc_b,
            inst_a=inst_a,
            inst_b=inst_b,
            job_a=job_a,
            job_b=job_b,
        )
        self._by_job.setdefault(job_a, []).append(decision)
        self._by_job.setdefault(job_b, []).append(decision)

    def complete(self, result: JobResult) -> list[PairObservation]:
        """Record one completion; return the pairings it closed."""
        job_id = result.spec.job_id
        open_here = self._by_job.get(job_id)
        if not open_here:
            return []
        finalized: list[PairObservation] = []
        for decision in list(open_here):
            if job_id in decision.results:
                continue  # re-delivered result: already recorded
            decision.results[job_id] = result
            if decision.complete:
                finalized.append(decision.observation())
                self._discard(decision)
        return finalized

    def _discard(self, decision: _OpenDecision) -> None:
        for job_id in (decision.job_a, decision.job_b):
            bucket = self._by_job.get(job_id)
            if bucket is None:
                continue
            if decision in bucket:
                bucket.remove(decision)
            if not bucket:
                del self._by_job[job_id]


@dataclass(frozen=True)
class _RecentPair:
    desc_a: AppDescriptor
    desc_b: AppDescriptor
    inst_a: AppInstance
    inst_b: AppInstance


def _pair_key(inst_a: AppInstance, inst_b: AppInstance):
    return (inst_a.app.code, inst_a.data_bytes, inst_b.app.code, inst_b.data_bytes)


class OnlineSTP:
    """Incrementally self-tuning wrapper over a fitted MLM-STP."""

    def __init__(
        self,
        base: MLMSTP,
        *,
        dataset=None,
        window: int = 6144,
        refresh_every: int = 64,
        detector: PageHinkley | None = None,
        relearn_pairs: int = 8,
        relearn_rows: int = 160,
        ridge_lam: float = 1e-6,
        seed: SeedLike = 0,
        constants: SimConstants = DEFAULT_CONSTANTS,
        telemetry: OnlineTelemetry | None = None,
    ) -> None:
        if base.global_model_ is None:
            raise RuntimeError("OnlineSTP requires a fitted MLM-STP")
        if base.scope != "global":
            raise ValueError("online tuning supports scope='global' only")
        #: The live model — a private copy; the base (champion) stays
        #: frozen for shadow-mode comparison.
        self.stp = copy.deepcopy(base)
        self.constants = constants
        self.refresh_every = refresh_every
        self.relearn_pairs = relearn_pairs
        self.relearn_rows = relearn_rows
        self.ridge_lam = ridge_lam
        self.detector = detector if detector is not None else PageHinkley()
        self.telemetry = telemetry if telemetry is not None else OnlineTelemetry()
        self.mode = "rls" if self.stp.model_kind == "lr" else "window"
        self._factory = self.stp._factory
        self._rng = rng_from(seed)
        self._window = SlidingWindow(window)
        self._since_refresh = 0
        self._recent: OrderedDict[tuple, _RecentPair] = OrderedDict()
        self._swept: set[tuple] = set()
        #: Sweeps left in the current learning period (opened by
        #: :meth:`refit`, drained by relearn and first-sight sweeps).
        self._learning_budget = 0
        #: Tuned configurations from learning-period sweeps, keyed by
        #: canonical descriptor pair — fresh database entries in the
        #: paper's sense, consulted before the model (LkT-style
        #: lookup for profiled pairings, MLM prediction otherwise).
        self._tuned: dict[tuple, tuple[JobConfig, JobConfig]] = {}
        self._manifold_keys: set[tuple] = set()
        self._book = PairingBook()
        self._ridge: OnlineRidge | None = None
        if dataset is not None:
            n = len(dataset.y)
            take = min(window, n)
            idx = np.unique(np.linspace(0, n - 1, take).astype(int))
            self._window.extend(dataset.X[idx], np.log(dataset.y[idx]))
            self.telemetry.window_rows = len(self._window)
        if self.mode == "rls":
            if len(self._window) == 0:
                raise ValueError(
                    "online 'lr' mode needs the training dataset to seed "
                    "the recursive least-squares state"
                )
            X, y = self._window.arrays()
            self._ridge = OnlineRidge(lam=self.ridge_lam).fit(X, y)
            self.stp.global_model_ = self._ridge

    # ------------------------------------------------------- prediction
    @staticmethod
    def _desc_key(desc: AppDescriptor) -> tuple:
        return (desc.app_class, desc.data_bytes, desc.reduced().tobytes())

    def predict_configs(
        self, a: AppDescriptor, b: AppDescriptor
    ) -> tuple[JobConfig, JobConfig]:
        swap = not _canonical_order(a, b)
        key = (
            (self._desc_key(b), self._desc_key(a))
            if swap
            else (self._desc_key(a), self._desc_key(b))
        )
        tuned = self._tuned.get(key)
        if tuned is not None:
            self.telemetry.tuned_hits += 1
            return (tuned[1], tuned[0]) if swap else tuned
        return self.stp.predict_configs(a, b)

    def predict_single_config(self, a: AppDescriptor) -> JobConfig:
        return self.stp.predict_single_config(a)

    # ------------------------------------------------- controller hooks
    def note_pairing(
        self,
        *,
        t: float,
        desc_a: AppDescriptor,
        desc_b: AppDescriptor,
        inst_a: AppInstance,
        inst_b: AppInstance,
        job_a: int,
        job_b: int,
    ) -> None:
        """The controller placed a pair; watch for its completions."""
        self.observe_pair(
            t=t, desc_a=desc_a, desc_b=desc_b, inst_a=inst_a, inst_b=inst_b
        )
        self._book.note(
            t=t,
            desc_a=desc_a,
            desc_b=desc_b,
            inst_a=inst_a,
            inst_b=inst_b,
            job_a=job_a,
            job_b=job_b,
        )

    def observe_pair(
        self,
        *,
        t: float,
        desc_a: AppDescriptor,
        desc_b: AppDescriptor,
        inst_a: AppInstance,
        inst_b: AppInstance,
    ) -> bool:
        """First-sight relearn during the learning period.

        While the sweep budget a :meth:`refit` opened is unspent, a
        never-swept pairing is swept the moment the controller asks
        about it — *before* the decision is scored — so drifted
        applications that first appear after the alarm still get
        learned instead of waiting for a second alarm that may never
        come.  Returns True when a sweep happened.
        """
        if self._learning_budget <= 0:
            return False
        if not _canonical_order(desc_a, desc_b):
            desc_a, desc_b = desc_b, desc_a
            inst_a, inst_b = inst_b, inst_a
        entry = _RecentPair(
            desc_a=desc_a, desc_b=desc_b, inst_a=inst_a, inst_b=inst_b
        )
        if not self._relearn_pair(entry):
            return False
        self._refresh()
        return True

    def on_complete(self, result: JobResult) -> None:
        """Job-completion telemetry (controller/service harvest)."""
        for obs in self._book.complete(result):
            self.partial_fit(obs)

    # ----------------------------------------------------- incremental
    def _observation_row(self, obs: PairObservation) -> np.ndarray:
        """The model-input row for one observation (raw features —
        observed rows *are* the manifold, no projection)."""
        return _row_block(
            obs.desc_a.reduced(),
            obs.desc_a.data_bytes,
            obs.desc_b.reduced(),
            obs.desc_b.data_bytes,
            [obs.cfg_a.frequency],
            [obs.cfg_a.block_size],
            [obs.cfg_a.n_mappers],
            [obs.cfg_b.frequency],
            [obs.cfg_b.block_size],
            [obs.cfg_b.n_mappers],
        )[0]

    def partial_fit(self, obs: PairObservation) -> bool:
        """Fold one observed pairing into the live model.

        Returns False (and counts ``skipped_rows``) for observations a
        log-space model cannot ingest — non-positive or non-finite EDP.
        """
        obs = _canonicalize(obs)
        edp = float(obs.edp)
        if not np.isfinite(edp) or edp <= 0.0:
            self.telemetry.skipped_rows += 1
            return False
        row = self._observation_row(obs)
        y = float(np.log(edp))
        pred = float(
            np.asarray(self.stp.global_model_.predict(row[None, :])).reshape(-1)[0]
        )
        alarm = self.detector.update(abs(pred - y))
        if obs.synchronized:
            self._window.extend(row[None, :], np.array([y]))
        else:
            self.telemetry.noisy_rows += 1
        key = _pair_key(obs.inst_a, obs.inst_b)
        self._recent[key] = _RecentPair(
            desc_a=obs.desc_a,
            desc_b=obs.desc_b,
            inst_a=obs.inst_a,
            inst_b=obs.inst_b,
        )
        self._recent.move_to_end(key)
        while len(self._recent) > 64:
            self._recent.popitem(last=False)
        self.telemetry.updates += 1
        self.telemetry.window_rows = len(self._window)
        if obs.synchronized:
            if self.mode == "rls":
                assert self._ridge is not None
                self._ridge.partial_fit(row, y)
            else:
                self._since_refresh += 1
                if self._since_refresh >= self.refresh_every:
                    self._refresh()
        if alarm:
            self.telemetry.drift_alarms += 1
            self.refit(t=obs.t, reason="drift")
        return True

    # ------------------------------------------------------------ refit
    def refit(self, t: float | None = None, reason: str = "manual") -> bool:
        """Re-enter the learning period and refresh the model.

        The most recent distinct pairings (bounded by
        ``relearn_pairs``) are re-swept — the simulator's equivalent
        of the paper's learning-period profiling — and their sampled
        grid rows join the window; the observed descriptors extend the
        projection manifold so future queries for the drifted
        applications stop projecting onto stale training features.
        Any budget the recent pairs leave unspent stays open for
        first-sight sweeps (:meth:`observe_pair`).
        """
        self._learning_budget = self.relearn_pairs
        recent = list(self._recent.values())[-self.relearn_pairs :]
        for entry in recent:
            if self._learning_budget <= 0:
                break
            self._relearn_pair(entry)
        self._refresh()
        self.detector.reset()
        self.telemetry.refits += 1
        self.telemetry.window_rows = len(self._window)
        return True

    def _relearn_pair(self, entry: _RecentPair) -> bool:
        """Sweep one never-swept pairing into the window (one unit of
        learning-period budget); False when it was already swept."""
        key = _pair_key(entry.inst_a, entry.inst_b)
        if key in self._swept:
            return False
        self._swept.add(key)
        self._learning_budget = max(0, self._learning_budget - 1)
        sweep = sweep_pair(
            entry.inst_a,
            entry.inst_b,
            node=self.stp.node,
            constants=self.constants,
        )
        n = len(sweep.edp)
        take = min(self.relearn_rows, n)
        idx = self._rng.choice(n, size=take, replace=False)
        if sweep.best_index not in idx:
            idx[0] = sweep.best_index
        rows = _row_block(
            entry.desc_a.reduced(),
            entry.desc_a.data_bytes,
            entry.desc_b.reduced(),
            entry.desc_b.data_bytes,
            sweep.freq_a[idx],
            sweep.block_a[idx],
            sweep.mappers_a[idx],
            sweep.freq_b[idx],
            sweep.block_b[idx],
            sweep.mappers_b[idx],
        )
        self._window.extend(rows, np.log(sweep.edp[idx]))
        self._tuned[
            (self._desc_key(entry.desc_a), self._desc_key(entry.desc_b))
        ] = sweep.best_configs
        self.telemetry.relearn_sweeps += 1
        self._extend_manifold(entry)
        return True

    def _extend_manifold(self, entry: _RecentPair) -> None:
        for desc, inst in (
            (entry.desc_a, entry.inst_a),
            (entry.desc_b, entry.inst_b),
        ):
            key = (inst.app.code, inst.data_bytes)
            if key in self._manifold_keys:
                continue
            self._manifold_keys.add(key)
            self.stp.train_features_ = np.vstack(
                [self.stp.train_features_, desc.reduced()[None, :]]
            )
            self.stp.train_sizes_ = np.append(
                self.stp.train_sizes_, float(inst.data_bytes)
            )

    def _refresh(self) -> None:
        """Refit the live model on the current window."""
        if len(self._window) == 0:
            return
        X, y = self._window.arrays()
        if self.mode == "rls":
            self._ridge = OnlineRidge(lam=self.ridge_lam).fit(X, y)
            self.stp.global_model_ = self._ridge
        else:
            self.stp.global_model_ = self._factory().fit(X, y)
        self._since_refresh = 0
