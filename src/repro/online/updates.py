"""Incremental model-update primitives for the online STP.

Two update rules, matched to the two model families the STP uses:

* :class:`OnlineRidge` — recursive least squares for the linear
  model.  Maintains the inverse Gram matrix of the augmented design
  and folds each new row in with a rank-1 Sherman–Morrison update, so
  after any sequence of ``partial_fit`` calls the coefficients equal
  a batch :class:`~repro.ml.linreg.LinearRegression` refit on the
  union of all rows (to numerical precision — pinned by tests).
* :class:`SlidingWindow` — a bounded row buffer for the models that
  have no exact incremental form (REPTree, MLP): new rows displace
  the oldest ones and the model is refit on the window.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_X, check_Xy


class OnlineRidge:
    """Ridge regression with exact rank-1 (RLS) updates.

    The intercept rides as an un-penalised augmented column, exactly
    as :class:`~repro.ml.linreg.LinearRegression` solves it, so a
    batch fit and an incremental fit agree row for row.
    """

    def __init__(self, lam: float = 1e-6) -> None:
        if lam <= 0:
            raise ValueError("lam must be > 0 (the Gram inverse must exist)")
        self.lam = lam
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self._gram_inv: np.ndarray | None = None  # (d+1, d+1)
        self._xty: np.ndarray | None = None  # (d+1,)
        self.n_rows_ = 0

    # ------------------------------------------------------------ batch
    def fit(self, X: np.ndarray, y: np.ndarray) -> "OnlineRidge":
        X, y = check_Xy(X, y)
        n, d = X.shape
        A = np.hstack([X, np.ones((n, 1))])
        reg = self.lam * np.eye(d + 1)
        reg[-1, -1] = 0.0  # the intercept is not penalised
        self._gram_inv = np.linalg.inv(A.T @ A + reg)
        self._xty = A.T @ y
        self.n_rows_ = n
        self._refresh_weights()
        return self

    # ------------------------------------------------------ incremental
    def partial_fit(self, x: np.ndarray, y: float) -> "OnlineRidge":
        """Fold one row in via the Sherman–Morrison identity."""
        if self._gram_inv is None or self._xty is None:
            raise RuntimeError("OnlineRidge.partial_fit requires an initial fit")
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != self._xty.shape[0] - 1:
            raise ValueError(
                f"expected {self._xty.shape[0] - 1} features, got {x.shape[0]}"
            )
        if not (np.all(np.isfinite(x)) and np.isfinite(y)):
            raise ValueError("partial_fit row must be finite")
        a = np.append(x, 1.0)
        ginv_a = self._gram_inv @ a
        denom = 1.0 + float(a @ ginv_a)
        self._gram_inv -= np.outer(ginv_a, ginv_a) / denom
        self._xty += a * float(y)
        self.n_rows_ += 1
        self._refresh_weights()
        return self

    def _refresh_weights(self) -> None:
        w = self._gram_inv @ self._xty
        self.coef_ = w[:-1]
        self.intercept_ = float(w[-1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self.intercept_ is None:
            raise RuntimeError("model is not fitted")
        X = check_X(X, self.coef_.shape[0])
        return X @ self.coef_ + self.intercept_


class SlidingWindow:
    """A bounded (X, y) row buffer: newest rows displace the oldest."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rows: list[np.ndarray] = []
        self._targets: list[float] = []

    def __len__(self) -> int:
        return len(self._rows)

    def extend(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if len(X) != len(y):
            raise ValueError("X and y row counts differ")
        for row, target in zip(X, y):
            self._rows.append(np.array(row, dtype=float))
            self._targets.append(float(target))
        overflow = len(self._rows) - self.capacity
        if overflow > 0:
            del self._rows[:overflow]
            del self._targets[:overflow]

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._rows:
            raise RuntimeError("sliding window is empty")
        return np.vstack(self._rows), np.asarray(self._targets, dtype=float)
