"""Page–Hinkley drift detection on log-EDP prediction residuals.

The online STP feeds the detector ``|predicted − observed|`` log-EDP
per completed pairing.  Under a stable workload the residual
magnitude hovers around the model's training error; when the mix
shifts to applications or input sizes the model has never seen, the
residuals jump and stay high.  Page–Hinkley accumulates the deviation
of each residual from its running mean (minus a drift allowance
``delta``) and alarms when the accumulator rises ``threshold`` above
its running minimum — the classic sequential change-point test, fully
deterministic for a given residual sequence.
"""

from __future__ import annotations


class PageHinkley:
    """Sequential change detection for a stream of non-negative values."""

    def __init__(
        self,
        *,
        delta: float = 0.1,
        threshold: float = 1.0,
        burn_in: int = 4,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if delta < 0:
            raise ValueError("delta must be >= 0")
        if burn_in < 0:
            raise ValueError("burn_in must be >= 0")
        self.delta = delta
        self.threshold = threshold
        self.burn_in = burn_in
        self.alarms = 0
        self.samples = 0
        self.reset()

    def reset(self) -> None:
        """Restart the test (called automatically after each alarm)."""
        self._n = 0
        self._mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0

    def update(self, value: float) -> bool:
        """Feed one residual; True when a change point is declared."""
        x = float(value)
        self.samples += 1
        self._n += 1
        self._mean += (x - self._mean) / self._n
        self._cum += x - self._mean - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        if self._n <= self.burn_in:
            return False
        if self._cum - self._cum_min > self.threshold:
            self.alarms += 1
            self.reset()
            return True
        return False
