"""Online self-tuning: incremental STP updates under workload drift.

ECoST's STP is fit offline; this package is the production
counterpart — the controller keeps learning while it schedules:

* :class:`~repro.online.updates.OnlineRidge` — rank-1
  Sherman–Morrison updates for the ridge linear model, exact against
  a batch refit;
* :class:`~repro.online.stp.OnlineSTP` — wraps a fitted
  :class:`~repro.core.stp.MLMSTP` with ``partial_fit`` from live
  job-completion telemetry, a Page–Hinkley drift detector on log-EDP
  residuals, and a bounded sliding-window ``refit`` that re-enters
  the learning period (bounded re-sweeps of the recently observed
  pairings) — the real implementation behind
  ``ECoSTController.on_cluster_change``;
* :class:`~repro.online.shadow.ShadowSTP` — champion/challenger
  shadow mode: the frozen offline model and the online learner score
  every pairing decision on the same stream, compared on cumulative
  EDP regret, with a deterministic sticky promotion rule.

:mod:`repro.online.scenario` packages the seeded drift scenario
(workload-mix shift from :mod:`repro.faults.drift` plus a node
crash/recovery) used by the CLI, the benchmark suite, and the tests.
"""

from repro.online.drift import PageHinkley
from repro.online.shadow import PairScorer, PromotionPolicy, ShadowSTP
from repro.online.stp import OnlineSTP, PairObservation, PairingBook
from repro.online.updates import OnlineRidge, SlidingWindow

__all__ = [
    "OnlineRidge",
    "OnlineSTP",
    "PageHinkley",
    "PairObservation",
    "PairScorer",
    "PairingBook",
    "PromotionPolicy",
    "ShadowSTP",
    "SlidingWindow",
]
