"""The seeded drift scenario: one command-line/benchmark/test harness.

One run builds the small offline pipeline (4 training applications ×
2 input sizes — cached through ``repro.experiments.artifacts``),
wraps the fitted model in champion/challenger shadow mode, and drives
an ECoST-scheduled cluster through a workload-mix shift from
:mod:`repro.faults.drift` plus an optional node crash/recovery (which
exercises the ``on_cluster_change`` relearn path).  Everything
derives from one seed: two runs with the same arguments produce
identical regret curves, promotion decisions, and counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import NearestCentroidClassifier
from repro.analysis.features import build_feature_matrix
from repro.core.controller import ECoSTController
from repro.core.database import build_database
from repro.core.stp import MLMSTP, build_training_dataset
from repro.faults import DriftSchedule, FaultEvent, FaultInjector, InjectionPlan
from repro.faults.drift import drifted_arrivals
from repro.mapreduce.engine import ClusterEngine
from repro.online.shadow import PromotionPolicy, ShadowSTP
from repro.online.stp import OnlineSTP
from repro.telemetry.registry import attach_online, cluster_registry
from repro.utils.rng import SeedLike
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app

#: The reduced offline pipeline the scenario trains on: 4 known
#: applications at the two smaller input sizes.
PIPELINE_CODES: tuple[str, ...] = ("wc", "st", "ts", "fp")
PIPELINE_SIZES: tuple[int, ...] = (1 * GB, 5 * GB)

#: The post-shift mix: applications the pipeline never saw, at an
#: input size it never swept.
DRIFT_CODES: tuple[str, ...] = ("km", "cf", "nb")
DRIFT_SIZES: tuple[int, ...] = (10 * GB,)


def pipeline_components(model_kind: str = "reptree"):
    """(fitted MLM-STP, classifier, training dataset) — artifact-cached."""
    from repro.experiments.artifacts import cached

    def build():
        training = [
            AppInstance(get_app(code), size)
            for code in PIPELINE_CODES
            for size in PIPELINE_SIZES
        ]
        _db, sweeps = build_database(training, keep_sweeps=True)
        dataset = build_training_dataset(
            training, sweeps=sweeps, rows_per_pair=200, seed=0
        )
        stp = MLMSTP(model_kind).fit(dataset)
        fm = build_feature_matrix(training, seed=0)
        classifier = NearestCentroidClassifier().fit(
            fm, [inst.app_class for inst in training]
        )
        return stp, classifier, dataset

    return cached(f"online-pipeline-{model_kind}", build)


@dataclass
class DriftRunReport:
    """Everything a drift run produced, JSON-able via :meth:`as_dict`."""

    n_jobs: int
    seed: int
    model_kind: str
    online: bool
    decisions: int
    promoted_at: int | None
    champion_curve: list[float] = field(default_factory=list)
    challenger_curve: list[float] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    summary: dict = field(default_factory=dict)

    @property
    def champion_regret(self) -> float:
        return self.champion_curve[-1] if self.champion_curve else 0.0

    @property
    def challenger_regret(self) -> float:
        return self.challenger_curve[-1] if self.challenger_curve else 0.0

    def as_dict(self) -> dict:
        return {
            "n_jobs": self.n_jobs,
            "seed": self.seed,
            "model_kind": self.model_kind,
            "online": self.online,
            "decisions": self.decisions,
            "promoted_at": self.promoted_at,
            "champion_regret": self.champion_regret,
            "challenger_regret": self.challenger_regret,
            "champion_curve": list(self.champion_curve),
            "challenger_curve": list(self.challenger_curve),
            "counters": dict(self.counters),
            "summary": dict(self.summary),
        }

    def render(self) -> str:
        lines = [
            f"drift scenario: {self.n_jobs} job(s), seed {self.seed}, "
            f"model {self.model_kind}, online "
            + ("enabled" if self.online else "disabled"),
            f"  completed {self.summary.get('completed', 0)} job(s) in "
            f"{self.summary.get('makespan', 0.0):.1f}s "
            f"({self.summary.get('energy_joules', 0.0):.0f} J)",
        ]
        if self.online:
            state = (
                f"challenger promoted at decision {self.promoted_at}"
                if self.promoted_at is not None
                else "champion still active"
            )
            lines += [
                f"  {self.decisions} pairing decision(s) scored; {state}",
                f"  cumulative EDP regret: champion "
                f"{self.champion_regret:.3g} J*s, challenger "
                f"{self.challenger_regret:.3g} J*s",
                "  counters: "
                + ", ".join(
                    f"{key}={self.counters.get(f'online.{key}', 0):g}"
                    for key in (
                        "updates",
                        "refits",
                        "drift_alarms",
                        "relearn_sweeps",
                    )
                ),
            ]
        return "\n".join(lines)


def run_drift_scenario(
    *,
    n_jobs: int = 64,
    seed: SeedLike = 0,
    n_nodes: int = 4,
    model_kind: str = "reptree",
    online: bool = True,
    shift_frac: float = 0.35,
    drift_codes: tuple[str, ...] = DRIFT_CODES,
    drift_sizes: tuple[int, ...] = DRIFT_SIZES,
    mean_interarrival_s: float = 60.0,
    crash: bool = True,
    policy: PromotionPolicy | None = None,
    stp_kwargs: dict | None = None,
) -> DriftRunReport:
    """Run one seeded drift scenario end to end.

    ``stp_kwargs`` forwards extra keyword arguments to the
    :class:`~repro.online.stp.OnlineSTP` (window size, relearn depth,
    detector) — the benchmark uses a leaner window than the default.
    """
    stp, classifier, dataset = pipeline_components(model_kind)
    horizon = n_jobs * mean_interarrival_s
    shift_time = horizon * shift_frac
    schedule = DriftSchedule.workload_shift(
        shift_time,
        before_codes=PIPELINE_CODES,
        before_sizes=PIPELINE_SIZES,
        after_codes=drift_codes,
        after_sizes=drift_sizes,
    )
    arrivals = drifted_arrivals(
        n_jobs, schedule, seed=seed, mean_interarrival_s=mean_interarrival_s
    )
    cluster = ClusterEngine(n_nodes)
    shadow: ShadowSTP | None = None
    if online:
        challenger = OnlineSTP(
            stp, dataset=dataset, seed=seed, **(stp_kwargs or {})
        )
        shadow = ShadowSTP(stp, challenger, policy=policy)
        controller = ECoSTController(cluster, shadow, classifier)
    else:
        controller = ECoSTController(cluster, stp, classifier)
    for t, instance in arrivals:
        controller.submit(instance, t)
    if crash:
        plan = InjectionPlan(
            events=(
                FaultEvent(
                    time=shift_time + 3 * mean_interarrival_s,
                    kind="node_crash",
                    node_id=n_nodes - 1,
                ),
                FaultEvent(
                    time=shift_time + 10 * mean_interarrival_s,
                    kind="node_recover",
                    node_id=n_nodes - 1,
                ),
            )
        )
        FaultInjector(cluster, plan, controller=controller).install()
    controller.run()
    registry = cluster_registry(cluster, cache=False)
    attach_online(registry, controller)
    makespan = cluster.makespan
    report = DriftRunReport(
        n_jobs=n_jobs,
        seed=int(seed) if not hasattr(seed, "integers") else -1,
        model_kind=model_kind,
        online=online,
        decisions=shadow.telemetry.decisions if shadow is not None else 0,
        promoted_at=shadow.promoted_at if shadow is not None else None,
        champion_curve=list(shadow.champion_curve) if shadow is not None else [],
        challenger_curve=(
            list(shadow.challenger_curve) if shadow is not None else []
        ),
        counters=registry.flatten(registry.snapshot()),
        summary={
            "completed": len(cluster.results),
            "makespan": makespan,
            "energy_joules": cluster.total_energy(makespan),
            "relearn_count": controller.relearn_count,
        },
    )
    return report
