"""Champion/challenger shadow-mode evaluation on one decision stream.

The frozen offline model (**champion**) and the online learner
(**challenger**, an :class:`~repro.online.stp.OnlineSTP`) both score
every pairing decision the controller makes: each predicts its own
pair configuration for the decision's descriptors, the closed-form
cost model prices both choices, and each contender accumulates **EDP
regret** — its choice's EDP minus the best EDP on the full pair grid
(cached per instance pair).  Placement follows the *active* contender
(champion until promotion); the other runs in shadow, costing two
extra grid predictions per decision and nothing on the cluster.

Promotion is deterministic and sticky: once at least
``min_decisions`` decisions are scored, the challenger is promoted at
the first ``check_every`` checkpoint where its cumulative regret is
at most ``margin`` of the champion's (and strictly smaller).  Two
runs with the same seed produce identical regret curves and the same
promotion decision — pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stp import AppDescriptor
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.job import JobResult
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.costmodel import pair_metrics
from repro.model.sweep import sweep_pair
from repro.online.stp import OnlineSTP, PairingBook
from repro.workloads.base import AppInstance


class PairScorer:
    """Closed-form EDP pricing of pairing choices, with a grid cache.

    ``score`` prices one concrete (cfg_a, cfg_b) choice for an
    instance pair; ``optimum`` is the best EDP over the full 2,800-
    point pair grid, swept once per distinct (app, size) pair and
    cached — the regret baseline.
    """

    def __init__(
        self,
        *,
        node: NodeSpec = ATOM_C2758,
        constants: SimConstants = DEFAULT_CONSTANTS,
    ) -> None:
        self.node = node
        self.constants = constants
        self._optima: dict[tuple, float] = {}

    @staticmethod
    def _key(inst: AppInstance) -> tuple:
        return (inst.app.code, inst.data_bytes)

    def optimum(self, inst_a: AppInstance, inst_b: AppInstance) -> float:
        """Best pair EDP on the full grid (orientation-invariant)."""
        ka, kb = self._key(inst_a), self._key(inst_b)
        if kb < ka:
            ka, kb, inst_a, inst_b = kb, ka, inst_b, inst_a
        cached = self._optima.get((ka, kb))
        if cached is None:
            sweep = sweep_pair(
                inst_a, inst_b, node=self.node, constants=self.constants
            )
            cached = float(sweep.best_edp)
            self._optima[(ka, kb)] = cached
        return cached

    def score(
        self,
        inst_a: AppInstance,
        inst_b: AppInstance,
        cfg_a: JobConfig,
        cfg_b: JobConfig,
    ) -> float:
        """The pair EDP of one concrete configuration choice."""
        metrics = pair_metrics(
            inst_a.profile,
            inst_a.data_bytes,
            [cfg_a.frequency],
            [cfg_a.block_size],
            [cfg_a.n_mappers],
            inst_b.profile,
            inst_b.data_bytes,
            [cfg_b.frequency],
            [cfg_b.block_size],
            [cfg_b.n_mappers],
            node=self.node,
            constants=self.constants,
        )
        return float(np.asarray(metrics.edp).reshape(-1)[0])


@dataclass(frozen=True)
class PromotionPolicy:
    """Deterministic sticky promotion rule for the challenger."""

    min_decisions: int = 12
    check_every: int = 4
    margin: float = 0.9

    def __post_init__(self) -> None:
        if self.min_decisions < 1:
            raise ValueError("min_decisions must be >= 1")
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")
        if not 0.0 < self.margin <= 1.0:
            raise ValueError("margin must be in (0, 1]")

    def should_promote(
        self, n_decisions: int, champion_cum: float, challenger_cum: float
    ) -> bool:
        if n_decisions < self.min_decisions:
            return False
        if n_decisions % self.check_every:
            return False
        return (
            challenger_cum <= self.margin * champion_cum
            and challenger_cum < champion_cum
        )


class ShadowSTP:
    """The controller-facing predictor running both contenders."""

    def __init__(
        self,
        champion,
        challenger: OnlineSTP,
        *,
        scorer: PairScorer | None = None,
        policy: PromotionPolicy | None = None,
    ) -> None:
        self.champion = champion
        self.challenger = challenger
        self.scorer = scorer if scorer is not None else PairScorer(
            node=challenger.stp.node, constants=challenger.constants
        )
        self.policy = policy if policy is not None else PromotionPolicy()
        #: Shared with the challenger so one registry namespace covers
        #: the whole online layer.
        self.telemetry = challenger.telemetry
        #: Decision index (1-based) at which the challenger took over;
        #: None while the champion is still active.
        self.promoted_at: int | None = None
        #: Cumulative EDP regret after each scored decision.
        self.champion_curve: list[float] = []
        self.challenger_curve: list[float] = []
        self._book = PairingBook()

    # ------------------------------------------------------- prediction
    @property
    def active(self):
        """Whoever currently drives placements."""
        return self.champion if self.promoted_at is None else self.challenger

    def predict_configs(
        self, a: AppDescriptor, b: AppDescriptor
    ) -> tuple[JobConfig, JobConfig]:
        return self.active.predict_configs(a, b)

    # ------------------------------------------------- controller hooks
    def refit(self, t: float | None = None, reason: str = "manual") -> bool:
        """Cluster-change relearn: only the challenger refits — the
        champion stays frozen by construction."""
        return self.challenger.refit(t=t, reason=reason)

    def note_pairing(
        self,
        *,
        t: float,
        desc_a: AppDescriptor,
        desc_b: AppDescriptor,
        inst_a: AppInstance,
        inst_b: AppInstance,
        job_a: int,
        job_b: int,
    ) -> None:
        """Score one pairing decision for both contenders.

        The challenger gets first sight before scoring — during a
        learning period it may sweep a never-seen pairing, exactly as
        it would were it active.
        """
        self.challenger.observe_pair(
            t=t, desc_a=desc_a, desc_b=desc_b, inst_a=inst_a, inst_b=inst_b
        )
        self._book.note(
            t=t,
            desc_a=desc_a,
            desc_b=desc_b,
            inst_a=inst_a,
            inst_b=inst_b,
            job_a=job_a,
            job_b=job_b,
        )
        optimum = self.scorer.optimum(inst_a, inst_b)
        regrets = []
        for contender in (self.champion, self.challenger):
            cfg_a, cfg_b = contender.predict_configs(desc_a, desc_b)
            edp = self.scorer.score(inst_a, inst_b, cfg_a, cfg_b)
            regrets.append(edp - optimum)
        champ_cum = (self.champion_curve[-1] if self.champion_curve else 0.0) + regrets[0]
        chal_cum = (
            self.challenger_curve[-1] if self.challenger_curve else 0.0
        ) + regrets[1]
        self.champion_curve.append(champ_cum)
        self.challenger_curve.append(chal_cum)
        self.telemetry.decisions += 1
        self.telemetry.champion_regret = champ_cum
        self.telemetry.challenger_regret = chal_cum
        if self.promoted_at is None and self.policy.should_promote(
            len(self.champion_curve), champ_cum, chal_cum
        ):
            self.promoted_at = len(self.champion_curve)
            self.telemetry.promotions += 1
            self.telemetry.promoted_at = self.promoted_at

    def on_complete(self, result: JobResult) -> None:
        """Completion telemetry: finished pairings train the challenger."""
        for obs in self._book.complete(result):
            self.challenger.partial_fit(obs)
