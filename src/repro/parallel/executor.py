"""Process-pool fan-out for configuration sweeps.

ECoST's knowledge-discovery loop is an embarrassingly parallel grid:
per-pair sweeps over (frequency, HDFS block size, mapper count) ×
core partitions, repeated for every training pair.  This module fans
that work out over a :class:`concurrent.futures.ProcessPoolExecutor`
while keeping three guarantees the rest of the repository relies on:

* **Determinism** — results are reassembled in submission order and
  the chunk-merge path is bit-identical to the serial full-grid path
  (``tests/test_parallel_executor.py`` asserts exact equality), so a
  database built with ``REPRO_WORKERS=8`` equals one built serially.
* **Serial fallback** — with one worker (the default, and whenever
  ``REPRO_WORKERS=1``) no pool or pickling is involved at all; tasks
  run inline in the calling process.
* **Load balancing** — pair sweeps are chunked by (pair, frequency
  block): the first application's frequency axis is the outermost
  axis of the pair grid, so per-chunk results concatenate into the
  canonical full grid (see ``pair_config_grid``).

Workers default to the ``REPRO_WORKERS`` environment variable
(``1`` = serial, ``0``/``auto`` = one per CPU core).

The payload of a full :class:`PairSweepResult` is ~1 MB of metric
arrays, which can dominate the 1-2 ms its grid takes to evaluate; use
:meth:`SweepExecutor.sweep_pairs_best` when only the optimum matters
(database construction) — its per-task payload is a few hundred bytes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.sweep import (
    PairSweepResult,
    SoloSweepResult,
    merge_pair_sweeps,
    sweep_pair,
    sweep_solo,
)
from repro.telemetry.profiling import SweepTelemetry
from repro.telemetry.tracing import NULL_TRACER, SWEEP_PID
from repro.workloads.base import AppInstance

#: Environment variable selecting the worker count.
WORKERS_ENV = "REPRO_WORKERS"


def worker_count(workers: int | None = None) -> int:
    """Resolve the effective worker count.

    Explicit ``workers`` wins; otherwise :data:`WORKERS_ENV` is
    consulted (default ``1``).  ``0`` or ``auto`` mean one worker per
    CPU core; anything else must be a positive integer.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "1").strip().lower()
        if raw in ("0", "auto"):
            return os.cpu_count() or 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be a non-negative integer or 'auto', got {raw!r}"
            ) from None
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"worker count must be >= 0, got {workers}")
    return workers


def _timed_call(fn: Callable[[Any], Any], item: Any) -> tuple[Any, str, float, float]:
    """Run one task, reporting (result, worker id, start, end).

    Start/end are ``time.perf_counter()`` readings; on the platforms we
    fan out on that clock is system-wide (CLOCK_MONOTONIC), so pool
    workers' readings share the parent's epoch and per-worker trace
    spans line up on one wall-clock timeline.
    """
    t0 = time.perf_counter()
    result = fn(item)
    return result, str(os.getpid()), t0, time.perf_counter()


# ----------------------------------------------------- task functions
# Module-level so they pickle into pool workers.
def _solo_task(item: tuple[AppInstance, NodeSpec, SimConstants]) -> SoloSweepResult:
    instance, node, constants = item
    return sweep_solo(instance, node=node, constants=constants)


def _pair_chunk_task(
    item: tuple[AppInstance, AppInstance, tuple[float, ...], NodeSpec, SimConstants]
) -> PairSweepResult:
    a, b, freqs_a, node, constants = item
    return sweep_pair(a, b, node=node, constants=constants, freqs_a=freqs_a)


@dataclass(frozen=True)
class _BestOfChunk:
    """Optimum of one frequency chunk, positioned in the full grid."""

    offset: int  # index of the chunk's first grid point in the full grid
    local_index: int
    best_edp: float
    config_a: JobConfig
    config_b: JobConfig

    @property
    def global_index(self) -> int:
        return self.offset + self.local_index


def _pair_best_task(
    item: tuple[int, AppInstance, AppInstance, tuple[float, ...], NodeSpec, SimConstants]
) -> _BestOfChunk:
    """Sweep one frequency chunk but ship back only its optimum.

    ``offset`` lets the merge reproduce the exact tie-breaking of
    ``np.argmin`` over the full grid (first occurrence wins).
    """
    offset, a, b, freqs_a, node, constants = item
    sweep = sweep_pair(a, b, node=node, constants=constants, freqs_a=freqs_a)
    i = sweep.best_index
    cfg_a, cfg_b = sweep.configs_at(i)
    return _BestOfChunk(
        offset=offset,
        local_index=i,
        best_edp=float(sweep.edp[i]),
        config_a=cfg_a,
        config_b=cfg_b,
    )


@dataclass(frozen=True)
class PairSweepBest:
    """The optimum of one full pair sweep (cheap cross-process payload)."""

    instance_a: AppInstance
    instance_b: AppInstance
    best_index: int
    best_edp: float
    best_configs: tuple[JobConfig, JobConfig]


class SweepExecutor:
    """Fans sweep batches out over a process pool.

    Parameters
    ----------
    workers:
        Process count; ``None`` reads :data:`WORKERS_ENV` (default 1 =
        serial inline execution), ``0`` means one per CPU core.
    freq_chunk:
        Frequency levels of the first application per pair-sweep task.
        Smaller chunks mean more, smaller tasks (better balance, more
        IPC).  The default of half the DVFS ladder gives 2 tasks per
        pair on the Atom's 4-level ladder.
    telemetry:
        Optional :class:`SweepTelemetry` receiving per-task worker wall
        times, batch walls, and artifact-cache deltas.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        freq_chunk: int | None = None,
        telemetry: SweepTelemetry | None = None,
        tracer=None,
    ) -> None:
        self.workers = worker_count(workers)
        if freq_chunk is not None and freq_chunk < 1:
            raise ValueError(f"freq_chunk must be >= 1, got {freq_chunk}")
        self.freq_chunk = freq_chunk
        self.telemetry = telemetry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Wall-clock origin for trace spans (sweep time is real time,
        # unlike the engine's simulated seconds).
        self._wall0 = time.perf_counter()
        self._batches = 0
        if self.tracer.enabled:
            self.tracer.name_process(SWEEP_PID, "sweep executor")

    # ------------------------------------------------------- plumbing
    def _record(self, worker: str, wall_s: float) -> None:
        if self.telemetry is not None:
            self.telemetry.record_task(worker, wall_s)

    def _cache_snapshot(self) -> tuple[int, int]:
        # Imported lazily: repro.experiments.artifacts imports modules
        # that themselves construct SweepExecutors.
        from repro.experiments.artifacts import cache_stats

        stats = cache_stats()
        return stats.hits, stats.misses

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Ordered map of a picklable function over items.

        Serial (inline) with one worker; otherwise fanned out over a
        process pool.  Results always come back in input order.
        """
        items = list(items)
        if not items:
            return []
        t0 = time.perf_counter()
        hits0 = misses0 = 0
        if self.telemetry is not None:
            hits0, misses0 = self._cache_snapshot()
        if self.workers == 1 or len(items) == 1:
            out = []
            for item in items:
                result, worker, ts, te = _timed_call(fn, item)
                self._record(worker, te - ts)
                self._trace_task(fn, worker, ts, te)
                out.append(result)
        else:
            # fork (where available) skips re-importing the package in
            # every worker; spawn remains the portable fallback.
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            n_workers = min(self.workers, len(items))
            chunksize = max(1, len(items) // (n_workers * 4))
            out = []
            with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
                for result, worker, ts, te in pool.map(
                    partial(_timed_call, fn), items, chunksize=chunksize
                ):
                    self._record(worker, te - ts)
                    self._trace_task(fn, worker, ts, te)
                    out.append(result)
        if self.telemetry is not None:
            hits1, misses1 = self._cache_snapshot()
            self.telemetry.record_cache(hits1 - hits0, misses1 - misses0)
            self.telemetry.record_batch(time.perf_counter() - t0)
        if self.tracer.enabled:
            self._batches += 1
            self.tracer.span(
                f"batch {getattr(fn, '__name__', 'task')} x{len(items)}",
                "sweep",
                max(t0 - self._wall0, 0.0),
                max(time.perf_counter() - self._wall0, 0.0),
                pid=SWEEP_PID,
                args={"tasks": len(items), "workers": self.workers},
            )
        return out

    def _trace_task(self, fn, worker: str, ts: float, te: float) -> None:
        """One per-task span on the worker's thread row (wall clock)."""
        if not self.tracer.enabled:
            return
        try:
            tid = int(worker)
        except ValueError:  # pragma: no cover - pid is always numeric
            tid = 0
        self.tracer.name_thread(SWEEP_PID, tid, f"worker {worker}")
        self.tracer.span(
            getattr(fn, "__name__", "task"),
            "sweep",
            max(ts - self._wall0, 0.0),
            max(te - self._wall0, 0.0),
            pid=SWEEP_PID,
            tid=tid,
        )

    def _freq_chunks(self, node: NodeSpec) -> list[tuple[float, ...]]:
        freqs = tuple(node.frequencies)
        size = self.freq_chunk
        if size is None:
            size = max(1, len(freqs) // 2)
        return [freqs[i : i + size] for i in range(0, len(freqs), size)]

    # -------------------------------------------------------- batches
    def sweep_solos(
        self,
        instances: Sequence[AppInstance],
        *,
        node: NodeSpec = ATOM_C2758,
        constants: SimConstants = DEFAULT_CONSTANTS,
    ) -> list[SoloSweepResult]:
        """All 160-point standalone sweeps, one task per instance."""
        return self.map(_solo_task, [(inst, node, constants) for inst in instances])

    def sweep_pairs(
        self,
        pairs: Sequence[tuple[AppInstance, AppInstance]],
        *,
        node: NodeSpec = ATOM_C2758,
        constants: SimConstants = DEFAULT_CONSTANTS,
    ) -> list[PairSweepResult]:
        """Full pair sweeps, chunked by (pair, frequency block).

        Results are bit-identical to calling :func:`sweep_pair` on each
        pair serially (same array order, same ``best_index``).
        """
        pairs = list(pairs)
        if self.workers == 1:
            # Inline fast path: no chunk-merge copies; the equivalence
            # test pins the chunked path to this result exactly.
            return self.map(
                _pair_chunk_task,
                [(a, b, None, node, constants) for a, b in pairs],
            )
        chunks = self._freq_chunks(node)
        tasks = [
            (a, b, chunk, node, constants)
            for a, b in pairs
            for chunk in chunks
        ]
        results = self.map(_pair_chunk_task, tasks)
        merged = []
        for i in range(len(pairs)):
            merged.append(
                merge_pair_sweeps(results[i * len(chunks) : (i + 1) * len(chunks)])
            )
        return merged

    def sweep_pairs_best(
        self,
        pairs: Sequence[tuple[AppInstance, AppInstance]],
        *,
        node: NodeSpec = ATOM_C2758,
        constants: SimConstants = DEFAULT_CONSTANTS,
    ) -> list[PairSweepBest]:
        """Per-pair optima only — the cheap path for database builds.

        Workers ship back a few hundred bytes per chunk instead of the
        ~1 MB full metric arrays; the reduction reproduces the exact
        first-occurrence tie-breaking of a full-grid ``argmin``.
        """
        pairs = list(pairs)
        chunks = self._freq_chunks(node)
        # Offsets need the per-chunk grid sizes; a chunk covers the
        # full grid length scaled by its share of the frequency axis.
        from repro.model.config import pair_config_grid

        full_len = len(pair_config_grid(node)[0])
        per_level = full_len // len(tuple(node.frequencies))

        tasks = []
        for a, b in pairs:
            offset = 0
            for chunk in chunks:
                tasks.append((offset, a, b, chunk, node, constants))
                offset += per_level * len(chunk)
        bests = self.map(_pair_best_task, tasks)
        out = []
        n_chunks = len(chunks)
        for i, (a, b) in enumerate(pairs):
            parts = bests[i * n_chunks : (i + 1) * n_chunks]
            edps = np.array([p.best_edp for p in parts])
            # np.argmin over the full grid returns the *first* global
            # index achieving the minimum; replicate that tie-breaking.
            winner = min(
                (p for p in parts if p.best_edp == edps.min()),
                key=lambda p: p.global_index,
            )
            out.append(
                PairSweepBest(
                    instance_a=a,
                    instance_b=b,
                    best_index=winner.global_index,
                    best_edp=winner.best_edp,
                    best_configs=(winner.config_a, winner.config_b),
                )
            )
        return out
