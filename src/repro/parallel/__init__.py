"""Parallel sweep execution (process-pool fan-out with serial fallback).

Public surface:

* :class:`SweepExecutor` — ordered, deterministic fan-out of solo and
  pair sweeps (and arbitrary picklable functions) over a process pool;
  serial inline execution when ``REPRO_WORKERS=1`` (the default).
* :func:`worker_count` — ``REPRO_WORKERS`` resolution.
* :class:`PairSweepBest` — the lightweight per-pair optimum payload.
"""

from repro.parallel.executor import (
    WORKERS_ENV,
    PairSweepBest,
    SweepExecutor,
    worker_count,
)

__all__ = [
    "WORKERS_ENV",
    "PairSweepBest",
    "SweepExecutor",
    "worker_count",
]
