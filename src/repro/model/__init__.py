"""Analytic cost model and vectorised configuration sweeps.

One cost kernel (:mod:`repro.model.costmodel`) serves two consumers:

* :mod:`repro.model.sweep` evaluates it over whole NumPy grids of
  configurations — this is what makes the paper's 84,480-run
  brute-force oracle (COLAO) tractable in seconds;
* :mod:`repro.mapreduce.engine` replays the same per-task quantities
  event by event, producing traces for telemetry.

Tests assert the two stay consistent.
"""

from repro.model.calibration import SimConstants, DEFAULT_CONSTANTS
from repro.model.config import JobConfig, config_grid, pair_config_grid
from repro.model.costmodel import (
    JobMetrics,
    PairMetrics,
    distributed_metrics,
    pair_metrics,
    standalone_metrics,
)
from repro.model.sweep import (
    PairSweepResult,
    SoloSweepResult,
    sweep_pair,
    sweep_solo,
)

__all__ = [
    "SimConstants",
    "DEFAULT_CONSTANTS",
    "JobConfig",
    "config_grid",
    "pair_config_grid",
    "JobMetrics",
    "PairMetrics",
    "standalone_metrics",
    "pair_metrics",
    "distributed_metrics",
    "SoloSweepResult",
    "PairSweepResult",
    "sweep_solo",
    "sweep_pair",
]
