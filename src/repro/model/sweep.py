"""Vectorised brute-force sweeps over configuration grids.

The paper's oracle techniques (ILAO, COLAO, UB) all rest on exhaustive
search: 160 configurations per standalone application, and the full
knob × core-partition cross product per co-located pair (84,480 runs
across the 528 pair workloads, §7).  These functions evaluate the cost
kernel once over the whole grid as NumPy arrays — no Python loop per
configuration — so a full-paper sweep takes seconds instead of the
testbed's weeks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig, config_grid, pair_config_grid
from repro.model.costmodel import JobMetrics, PairMetrics, pair_metrics, standalone_metrics
from repro.workloads.base import AppInstance


@dataclass(frozen=True)
class SoloSweepResult:
    """Exhaustive single-application sweep."""

    instance: AppInstance
    freq: np.ndarray
    block: np.ndarray
    mappers: np.ndarray
    metrics: JobMetrics

    @property
    def edp(self) -> np.ndarray:
        return self.metrics.edp

    @property
    def best_index(self) -> int:
        return int(np.argmin(self.metrics.edp))

    @property
    def best_config(self) -> JobConfig:
        i = self.best_index
        return JobConfig(
            frequency=float(self.freq[i]),
            block_size=int(self.block[i]),
            n_mappers=int(self.mappers[i]),
        )

    @property
    def best_edp(self) -> float:
        return float(self.metrics.edp[self.best_index])

    def config_at(self, index: int) -> JobConfig:
        return JobConfig(
            frequency=float(self.freq[index]),
            block_size=int(self.block[index]),
            n_mappers=int(self.mappers[index]),
        )


@dataclass(frozen=True)
class PairSweepResult:
    """Exhaustive co-located pair sweep."""

    instance_a: AppInstance
    instance_b: AppInstance
    freq_a: np.ndarray
    block_a: np.ndarray
    mappers_a: np.ndarray
    freq_b: np.ndarray
    block_b: np.ndarray
    mappers_b: np.ndarray
    metrics: PairMetrics

    @property
    def edp(self) -> np.ndarray:
        return self.metrics.edp

    @property
    def best_index(self) -> int:
        return int(np.argmin(self.metrics.edp))

    @property
    def best_edp(self) -> float:
        return float(self.metrics.edp[self.best_index])

    def configs_at(self, index: int) -> tuple[JobConfig, JobConfig]:
        return (
            JobConfig(
                frequency=float(self.freq_a[index]),
                block_size=int(self.block_a[index]),
                n_mappers=int(self.mappers_a[index]),
            ),
            JobConfig(
                frequency=float(self.freq_b[index]),
                block_size=int(self.block_b[index]),
                n_mappers=int(self.mappers_b[index]),
            ),
        )

    @property
    def best_configs(self) -> tuple[JobConfig, JobConfig]:
        return self.configs_at(self.best_index)

    def best_for_partition(self, m_a: int, m_b: int) -> tuple[int, float]:
        """(index, EDP) of the best grid point with the given core split."""
        mask = (self.mappers_a == m_a) & (self.mappers_b == m_b)
        if not mask.any():
            raise ValueError(f"partition ({m_a}, {m_b}) not in the sweep grid")
        idx = np.flatnonzero(mask)
        local = int(np.argmin(self.metrics.edp[idx]))
        return int(idx[local]), float(self.metrics.edp[idx[local]])


_SWEEP_BACKENDS = ("numpy", "batch")


def _check_backend(backend: str) -> None:
    if backend not in _SWEEP_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; valid: {', '.join(_SWEEP_BACKENDS)}"
        )


def sweep_solo(
    instance: AppInstance,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    remote_fraction: float | None = None,
    backend: str = "numpy",
) -> SoloSweepResult:
    """Evaluate all 160 standalone configurations for one instance.

    ``backend="batch"`` routes through the SoA kernel of
    :mod:`repro.batch.kernel` (profile constants as per-lane arrays) —
    bit-identical results, and the path :func:`sweep_solo_batch` uses
    to fuse many instances into a single kernel call.
    """
    _check_backend(backend)
    f, b, m = config_grid(node)
    if backend == "batch":
        from repro.batch.kernel import ProfileSoA, standalone_metrics_soa

        soa = ProfileSoA.from_profiles([instance.profile]).take(
            np.zeros(len(f), dtype=np.intp)
        )
        metrics = standalone_metrics_soa(
            soa, instance.data_bytes, f, b, m,
            node=node, constants=constants, remote_fraction=remote_fraction,
        )
    else:
        metrics = standalone_metrics(
            instance.profile, instance.data_bytes, f, b, m,
            node=node, constants=constants, remote_fraction=remote_fraction,
        )
    return SoloSweepResult(instance=instance, freq=f, block=b, mappers=m, metrics=metrics)


def sweep_pair(
    instance_a: AppInstance,
    instance_b: AppInstance,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    partitions: list[tuple[int, int]] | None = None,
    remote_fraction: float | None = None,
    freqs_a: Sequence[float] | None = None,
    backend: str = "numpy",
) -> PairSweepResult:
    """Evaluate the full pair grid (knobs × core partitions) for a pair.

    Default grid: (4·5)² knob combinations × 7 full core partitions =
    2,800 co-located configurations per pair.  ``freqs_a`` restricts
    the first application's frequency axis — a *chunk* of the full
    sweep that :func:`merge_pair_sweeps` can stitch back together.
    ``backend="batch"`` evaluates through the SoA pair kernel
    (bit-identical; see :func:`sweep_pair_batch` for the fused
    multi-pair form).
    """
    _check_backend(backend)
    f1, b1, m1, f2, b2, m2 = pair_config_grid(
        node, partitions=partitions, freqs_a=freqs_a
    )
    if backend == "batch":
        from repro.batch.kernel import ProfileSoA, pair_metrics_soa

        zeros = np.zeros(len(f1), dtype=np.intp)
        pa = ProfileSoA.from_profiles([instance_a.profile]).take(zeros)
        pb = ProfileSoA.from_profiles([instance_b.profile]).take(zeros)
        metrics = pair_metrics_soa(
            pa, instance_a.data_bytes, f1, b1, m1,
            pb, instance_b.data_bytes, f2, b2, m2,
            node=node, constants=constants, remote_fraction=remote_fraction,
        )
    else:
        metrics = pair_metrics(
            instance_a.profile, instance_a.data_bytes, f1, b1, m1,
            instance_b.profile, instance_b.data_bytes, f2, b2, m2,
            node=node, constants=constants, remote_fraction=remote_fraction,
        )
    return PairSweepResult(
        instance_a=instance_a, instance_b=instance_b,
        freq_a=f1, block_a=b1, mappers_a=m1,
        freq_b=f2, block_b=b2, mappers_b=m2,
        metrics=metrics,
    )


# --------------------------------------------------- fused batch sweeps
def _slice_metrics(cls, metrics, start: int, stop: int):
    """Row-slice every array field of a metrics dataclass (recursive)."""
    kwargs = {}
    for field in dataclasses.fields(cls):
        val = getattr(metrics, field.name)
        if dataclasses.is_dataclass(val):
            kwargs[field.name] = _slice_metrics(type(val), val, start, stop)
        else:
            kwargs[field.name] = np.asarray(val)[start:stop]
    return cls(**kwargs)


def sweep_solo_batch(
    instances: Sequence[AppInstance],
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    remote_fraction: float | None = None,
) -> list[SoloSweepResult]:
    """All instances' solo sweeps fused into ONE SoA kernel call.

    ``len(instances) × 160`` lanes evaluate together — per-lane profile
    constants make mixed applications free — and the flat result is
    sliced back into per-instance :class:`SoloSweepResult` records,
    each bit-identical to its own :func:`sweep_solo` call.
    """
    from repro.batch.kernel import ProfileSoA, standalone_metrics_soa

    if not instances:
        raise ValueError("need at least one instance")
    f, b, m = config_grid(node)
    G = len(f)
    N = len(instances)
    soa = ProfileSoA.from_profiles([i.profile for i in instances]).take(
        np.repeat(np.arange(N, dtype=np.intp), G)
    )
    data = np.repeat(np.array([float(i.data_bytes) for i in instances]), G)
    metrics = standalone_metrics_soa(
        soa, data, np.tile(f, N), np.tile(b, N), np.tile(m, N),
        node=node, constants=constants, remote_fraction=remote_fraction,
    )
    return [
        SoloSweepResult(
            instance=inst, freq=f, block=b, mappers=m,
            metrics=_slice_metrics(type(metrics), metrics, i * G, (i + 1) * G),
        )
        for i, inst in enumerate(instances)
    ]


def sweep_pair_batch(
    pairs: Sequence[tuple[AppInstance, AppInstance]],
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    partitions: list[tuple[int, int]] | None = None,
    remote_fraction: float | None = None,
) -> list[PairSweepResult]:
    """All pairs' co-location sweeps fused into ONE SoA kernel call.

    ``len(pairs) × 2800`` lanes in a single :func:`pair_metrics_soa`
    evaluation, sliced back into per-pair :class:`PairSweepResult`
    records bit-identical to individual :func:`sweep_pair` calls.
    """
    from repro.batch.kernel import ProfileSoA, pair_metrics_soa

    if not pairs:
        raise ValueError("need at least one pair")
    f1, b1, m1, f2, b2, m2 = pair_config_grid(node, partitions=partitions)
    G = len(f1)
    N = len(pairs)
    lanes = np.repeat(np.arange(N, dtype=np.intp), G)
    pa = ProfileSoA.from_profiles([a.profile for a, _b in pairs]).take(lanes)
    pb = ProfileSoA.from_profiles([b.profile for _a, b in pairs]).take(lanes)
    data_a = np.repeat(np.array([float(a.data_bytes) for a, _b in pairs]), G)
    data_b = np.repeat(np.array([float(b.data_bytes) for _a, b in pairs]), G)
    metrics = pair_metrics_soa(
        pa, data_a, np.tile(f1, N), np.tile(b1, N), np.tile(m1, N),
        pb, data_b, np.tile(f2, N), np.tile(b2, N), np.tile(m2, N),
        node=node, constants=constants, remote_fraction=remote_fraction,
    )
    return [
        PairSweepResult(
            instance_a=a, instance_b=b,
            freq_a=f1, block_a=b1, mappers_a=m1,
            freq_b=f2, block_b=b2, mappers_b=m2,
            metrics=_slice_metrics(type(metrics), metrics, i * G, (i + 1) * G),
        )
        for i, (a, b) in enumerate(pairs)
    ]


# ------------------------------------------------------- chunk merging
def _concat_metrics(cls, parts: Sequence, lengths: Sequence[int]):
    """Field-wise concatenation of metrics dataclasses.

    Fields that broadcast to scalars in a chunk are expanded to the
    chunk's grid length first, so the merged result is exactly what a
    single full-grid evaluation would have produced.
    """
    kwargs = {}
    for field in dataclasses.fields(cls):
        vals = [getattr(p, field.name) for p in parts]
        if dataclasses.is_dataclass(vals[0]):
            kwargs[field.name] = _concat_metrics(type(vals[0]), vals, lengths)
        else:
            kwargs[field.name] = np.concatenate(
                [np.broadcast_to(np.asarray(v), (n,)) for v, n in zip(vals, lengths)]
            )
    return cls(**kwargs)


def merge_pair_sweeps(chunks: Sequence[PairSweepResult]) -> PairSweepResult:
    """Stitch frequency-axis chunks of one pair sweep back together.

    Chunks must cover consecutive slices of the first application's
    frequency axis in order (as produced by ``sweep_pair(freqs_a=...)``
    over ``node.frequencies``); the merged result is then bit-identical
    to the unchunked sweep — same array order, same ``best_index``.
    """
    if not chunks:
        raise ValueError("merge_pair_sweeps needs at least one chunk")
    if len(chunks) == 1:
        return chunks[0]
    first = chunks[0]
    for c in chunks[1:]:
        if (
            c.instance_a.label != first.instance_a.label
            or c.instance_b.label != first.instance_b.label
        ):
            raise ValueError("cannot merge sweep chunks of different pairs")
    lengths = [len(c.freq_a) for c in chunks]
    cat = lambda name: np.concatenate([getattr(c, name) for c in chunks])
    return PairSweepResult(
        instance_a=first.instance_a,
        instance_b=first.instance_b,
        freq_a=cat("freq_a"), block_a=cat("block_a"), mappers_a=cat("mappers_a"),
        freq_b=cat("freq_b"), block_b=cat("block_b"), mappers_b=cat("mappers_b"),
        metrics=_concat_metrics(type(first.metrics), [c.metrics for c in chunks], lengths),
    )
