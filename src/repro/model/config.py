"""Tuning-parameter configurations and grid enumeration.

The paper's configuration space (§2.4): 5 HDFS block sizes × 8 mapper
counts × 4 frequencies = 160 settings per application.  For co-located
pairs the mapper counts are a core partition (m1 + m2 = 8 on the
8-core node), giving 7 partitions × (4·5)² per-app knob combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.hardware.node import NodeSpec
from repro.hdfs.blocks import HDFS_BLOCK_SIZES
from repro.utils.units import GHZ, MB, fmt_bytes, fmt_freq


@dataclass(frozen=True, order=True)
class JobConfig:
    """One setting of the three tuning knobs for one application."""

    frequency: float  # Hz — must be a DVFS level
    block_size: int  # bytes — must be a studied HDFS block size
    n_mappers: int  # concurrently running map tasks on the node

    def __post_init__(self) -> None:
        if self.n_mappers < 1:
            raise ValueError(f"n_mappers must be >= 1, got {self.n_mappers}")
        if self.block_size < 1:
            raise ValueError("block_size must be positive")
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")

    def validate_for(self, node: NodeSpec) -> "JobConfig":
        """Check the config against a node's DVFS table and core count."""
        node.dvfs.point_for(self.frequency)
        node.validate_mappers(self.n_mappers)
        if self.block_size not in HDFS_BLOCK_SIZES:
            raise ValueError(
                f"block size {fmt_bytes(self.block_size)} is not a studied HDFS size"
            )
        return self

    @property
    def label(self) -> str:
        """Compact human-readable form, e.g. ``2.4GHz/512MB/4m``."""
        return f"{fmt_freq(self.frequency)}/{fmt_bytes(self.block_size)}/{self.n_mappers}m"

    def as_row(self) -> tuple[float, int, int]:
        """(GHz, block MB, mappers) — the paper's table format."""
        return (round(self.frequency / GHZ, 1), self.block_size // MB, self.n_mappers)


def iter_configs(
    node: NodeSpec,
    *,
    mappers: Sequence[int] | None = None,
    block_sizes: Sequence[int] = HDFS_BLOCK_SIZES,
) -> Iterator[JobConfig]:
    """Enumerate the single-application configuration space."""
    if mappers is None:
        mappers = range(1, node.n_cores + 1)
    for f in node.frequencies:
        for b in block_sizes:
            for m in mappers:
                yield JobConfig(frequency=f, block_size=b, n_mappers=m)


def config_grid(
    node: NodeSpec,
    *,
    mappers: Sequence[int] | None = None,
    block_sizes: Sequence[int] = HDFS_BLOCK_SIZES,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The single-app grid as parallel (freq, block, mappers) arrays.

    Default size is the paper's 4 × 5 × 8 = 160 settings.
    """
    configs = list(iter_configs(node, mappers=mappers, block_sizes=block_sizes))
    f = np.array([c.frequency for c in configs])
    b = np.array([c.block_size for c in configs], dtype=float)
    m = np.array([c.n_mappers for c in configs], dtype=float)
    return f, b, m


def pair_config_grid(
    node: NodeSpec,
    *,
    block_sizes: Sequence[int] = HDFS_BLOCK_SIZES,
    partitions: Sequence[tuple[int, int]] | None = None,
    freqs_a: Sequence[float] | None = None,
) -> tuple[np.ndarray, ...]:
    """The co-located pair grid as six parallel arrays.

    Returns ``(f1, b1, m1, f2, b2, m2)``.  By default the mapper counts
    enumerate all full core partitions ``m1 + m2 = n_cores`` (the
    "every combination of core partitioning" of Fig. 5); pass
    ``partitions`` to study under-committed splits too.

    ``freqs_a`` restricts the *first* application's frequency axis.
    Because that axis is the outermost (slowest-varying) one, grids
    built for consecutive slices of ``node.frequencies`` concatenate
    into exactly the full default grid — the property the parallel
    sweep executor's chunk-and-merge path relies on.
    """
    if partitions is None:
        partitions = [(m, node.n_cores - m) for m in range(1, node.n_cores)]
    for m1, m2 in partitions:
        if m1 < 1 or m2 < 1 or m1 + m2 > node.n_cores:
            raise ValueError(f"invalid core partition ({m1}, {m2})")
    freqs = np.asarray(node.frequencies)
    freqs_1 = freqs if freqs_a is None else np.asarray(freqs_a, dtype=float)
    blocks = np.asarray(block_sizes, dtype=float)
    parts = np.asarray(partitions, dtype=float)
    # meshgrid over (f1, b1, f2, b2, partition)
    f1, b1, f2, b2, pi = np.meshgrid(
        freqs_1, blocks, freqs, blocks, np.arange(len(parts)), indexing="ij"
    )
    m1 = parts[pi.astype(int), 0]
    m2 = parts[pi.astype(int), 1]
    flat = lambda a: a.reshape(-1)
    return flat(f1), flat(b1), flat(m1), flat(f2), flat(b2), flat(m2)


def grid_to_configs(f: np.ndarray, b: np.ndarray, m: np.ndarray) -> list[JobConfig]:
    """Convert parallel arrays back into :class:`JobConfig` objects."""
    return [
        JobConfig(frequency=float(fi), block_size=int(bi), n_mappers=int(mi))
        for fi, bi, mi in zip(f, b, m)
    ]
