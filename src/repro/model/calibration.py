"""Simulation constants that are properties of the *software stack*.

Hardware constants live in :mod:`repro.hardware`; application constants
in :mod:`repro.workloads.profiles`.  What remains is Hadoop itself:
task scheduling overheads, shuffle re-read behaviour, memory
overcommit penalties, and multi-node skew.  They are gathered in one
frozen dataclass so experiments can run ablations by substituting a
modified copy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class SimConstants:
    """Framework-level calibration constants.

    Parameters
    ----------
    task_overhead_s:
        Serial per-wave task overhead (JVM start/reuse, heartbeat
        scheduling).  Each wave of map tasks pays this once per slot
        pipeline; it is what punishes tiny HDFS blocks.
    shuffle_reread_fraction:
        Fraction of map output the reduce side re-reads from disk; the
        rest is served from the page cache.
    swap_penalty:
        Disk-traffic multiplier slope under memory overcommit: traffic
        scales by ``1 + swap_penalty · max(footprint/available − 1, 0)``.
    straggler_coeff:
        Multi-node skew: job time inflates by ``1 + c · log2(n_nodes)``
        (per-node data skew and shuffle barriers grow with scale).
    remote_shuffle_fraction:
        Fraction of shuffle data crossing the NIC when the cluster
        context is the paper's 8-node deployment ((N−1)/N = 0.875).
    cache_share_floor:
        Minimum LLC fraction a co-runner retains (it always keeps some
        recently-inserted lines).
    learning_period_s:
        Length of the profiling window STP uses to collect features
        from an unknown application (§6.4's "learning period").
    """

    task_overhead_s: float = 0.8
    shuffle_reread_fraction: float = 0.25
    swap_penalty: float = 0.8
    straggler_coeff: float = 0.04
    remote_shuffle_fraction: float = 0.875
    cache_share_floor: float = 0.05
    learning_period_s: float = 30.0

    def __post_init__(self) -> None:
        check_positive("task_overhead_s", self.task_overhead_s)
        check_probability("shuffle_reread_fraction", self.shuffle_reread_fraction)
        check_positive("swap_penalty", self.swap_penalty, strict=False)
        check_positive("straggler_coeff", self.straggler_coeff, strict=False)
        check_probability("remote_shuffle_fraction", self.remote_shuffle_fraction)
        check_probability("cache_share_floor", self.cache_share_floor)
        check_positive("learning_period_s", self.learning_period_s)

    def with_(self, **kwargs) -> "SimConstants":
        """A modified copy (for ablation experiments)."""
        return replace(self, **kwargs)


#: The calibration used by all headline experiments.
DEFAULT_CONSTANTS = SimConstants()
