"""The analytic MapReduce cost kernel.

Everything the reproduction measures — execution time, power, energy,
EDP — derives from the closed-form job model implemented here.  The
model is written entirely in broadcastable NumPy operations so a whole
configuration grid evaluates in one call (see :mod:`repro.model.sweep`),
following the vectorise-don't-loop idiom of the HPC guides.

Job model
---------
A job processing ``D`` input bytes with ``m`` mapper slots, HDFS block
size ``b`` and core frequency ``f`` decomposes into resource times:

* **CPU** — ``instr · spi(f, CPI₀, MPKI_eff)`` core-seconds spread over
  ``m_eff`` cores with last-wave imbalance; ``spi`` has a frequency-
  scaled pipeline term plus a frequency-independent memory-stall term
  (the memory wall — see :class:`repro.hardware.cpu.CoreModel`).
* **Disk** — input reads + map-side spills + shuffle write and partial
  re-read + output writes, at the aggregate bandwidth the disk delivers
  for the current stream count and extent (block) size.
* **Network** — the remote fraction of the shuffle across the 1 GbE NIC.
* **Overhead** — per-wave task scheduling/JVM cost (punishes small
  blocks).

The three resource times compose with the application's ``io_overlap``:

    T_work = ov · max(T_cpu, T_disk, T_net) + (1 − ov) · ΣT

so an I/O-bound app (low overlap) leaves every resource mostly idle —
the property that makes co-location profitable (§4.2 of the paper).

Co-location applies three couplings before evaluating each job:
LLC capacity partitioning (pressure-proportional, power-law miss
inflation), memory-footprint overcommit (extra disk traffic), and disk
stream interleaving; then a fluid *stretch* slows both jobs when their
aggregate disk/NIC/DRAM demand oversubscribes a resource, and a
two-segment schedule yields makespan and energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.workloads.base import AppProfile

_CACHE_LINE = 64.0


@dataclass(frozen=True)
class JobMetrics:
    """Closed-form metrics of one job execution (all fields broadcast).

    ``duration`` is wall time; the ``u_*`` fields are time-average
    utilisations *demanded* by this job alone (used both for power and
    for co-location contention); ``power``/``energy``/``edp`` are
    whole-node figures including idle draw, matching the paper's
    Wattsup methodology.
    """

    duration: np.ndarray
    t_cpu: np.ndarray
    t_disk: np.ndarray
    t_net: np.ndarray
    t_overhead: np.ndarray
    u_cpu: np.ndarray  # busy fraction of each of the job's cores
    u_disk: np.ndarray
    u_net: np.ndarray
    mem_demand: np.ndarray  # DRAM bytes/s demanded
    stall_fraction: np.ndarray
    m_eff: np.ndarray
    n_tasks: np.ndarray
    waves: np.ndarray
    mpki_eff: np.ndarray
    core_power: np.ndarray  # watts above idle from this job's cores
    power: np.ndarray  # whole-node watts when running alone
    energy: np.ndarray  # J, whole node
    edp: np.ndarray  # J·s

    def scalar(self, field: str) -> float:
        """Convenience: a 0-d metric as a Python float."""
        return float(np.asarray(getattr(self, field)))

    @property
    def pipeline_seconds(self) -> np.ndarray:
        """Core-pipeline CPU seconds: ``t_cpu`` minus its memory-stall
        share.  This is the component that scales as 1/f under DVFS —
        the frequency-doubling metamorphic relation pins exactly this.
        """
        return self.t_cpu * (1.0 - self.stall_fraction)


@dataclass(frozen=True, slots=True)
class ScalarJobMetrics:
    """Scalar twin of :class:`JobMetrics` — plain floats, no arrays.

    The discrete-event engine evaluates the cost kernel once per
    running job per membership change, always with scalar knobs; going
    through the broadcastable NumPy path costs ~50 array allocations
    per call.  :func:`standalone_metrics_scalar` produces this record
    instead, mirroring the array path operation-for-operation so the
    two are bit-identical (``tests/test_costmodel_scalar.py`` asserts
    exact equality over the full configuration grid).
    """

    duration: float
    t_cpu: float
    t_disk: float
    t_net: float
    t_overhead: float
    u_cpu: float
    u_disk: float
    u_net: float
    mem_demand: float
    stall_fraction: float
    m_eff: float
    n_tasks: float
    waves: float
    mpki_eff: float
    core_power: float
    power: float
    energy: float
    edp: float

    def scalar(self, field: str) -> float:
        """API parity with :meth:`JobMetrics.scalar`."""
        return getattr(self, field)

    @property
    def pipeline_seconds(self) -> float:
        """Scalar twin of :attr:`JobMetrics.pipeline_seconds`."""
        return self.t_cpu * (1.0 - self.stall_fraction)


@dataclass(frozen=True)
class PairMetrics:
    """Closed-form metrics of a co-located pair on one node."""

    makespan: np.ndarray
    energy: np.ndarray
    edp: np.ndarray
    stretch: np.ndarray
    t_first_done: np.ndarray  # when the shorter job completes
    duration_a: np.ndarray  # completion time of job A
    duration_b: np.ndarray
    job_a: JobMetrics
    job_b: JobMetrics

    def scalar(self, field: str) -> float:
        return float(np.asarray(getattr(self, field)))


def _dyn_scale_lookup(node: NodeSpec, frequency) -> np.ndarray:
    """Vectorised V²f dynamic-power scale for arrays of DVFS levels."""
    freqs = np.asarray(node.dvfs.frequencies)
    ref = node.dvfs.max_point
    scales = np.array([p.dynamic_scale(ref) for p in node.dvfs.levels])
    f = np.asarray(frequency, dtype=float)
    idx = np.searchsorted(freqs, f * (1 - 1e-6))
    idx = np.clip(idx, 0, len(freqs) - 1)
    if not np.allclose(freqs[idx], f, rtol=1e-3):
        raise ValueError("frequency array contains non-DVFS levels")
    return scales[idx]


@lru_cache(maxsize=None)
def _dyn_scale_table(node: NodeSpec) -> dict[float, float]:
    """Exact-frequency → dynamic-power-scale map for the scalar path."""
    ref = node.dvfs.max_point
    return {p.frequency: p.dynamic_scale(ref) for p in node.dvfs.levels}


def _dyn_scale_scalar(node: NodeSpec, frequency: float) -> float:
    """Scalar twin of :func:`_dyn_scale_lookup` (same tolerance rule)."""
    table = _dyn_scale_table(node)
    hit = table.get(frequency)
    if hit is not None:
        return hit
    for f, scale in table.items():  # rtol=1e-3, like the array path
        if abs(f - frequency) <= 1e-3 * abs(frequency):
            return scale
    raise ValueError("frequency array contains non-DVFS levels")


def standalone_metrics(
    profile: AppProfile,
    data_bytes,
    frequency,
    block_size,
    n_mappers,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    mpki_scale=1.0,
    disk_traffic_scale=1.0,
    extra_streams=0.0,
    remote_fraction: float | None = None,
) -> JobMetrics:
    """Evaluate one job under one (or a grid of) configuration(s).

    All of ``data_bytes``, ``frequency``, ``block_size``, ``n_mappers``,
    ``mpki_scale``, ``disk_traffic_scale`` and ``extra_streams``
    broadcast together.  The three ``*_scale``/``extra_streams`` hooks
    are how :func:`pair_metrics` injects co-location couplings while
    reusing this single kernel.
    """
    D = np.asarray(data_bytes, dtype=float)
    f = np.asarray(frequency, dtype=float)
    b = np.asarray(block_size, dtype=float)
    m = np.asarray(n_mappers, dtype=float)
    if np.any(D <= 0):
        raise ValueError("data_bytes must be positive")
    if np.any(m < 1):
        raise ValueError("n_mappers must be >= 1")
    if remote_fraction is None:
        remote_fraction = constants.remote_shuffle_fraction

    p = profile
    n_tasks = np.ceil(D / b)
    m_eff = np.minimum(m, n_tasks)
    waves = np.ceil(n_tasks / m_eff)
    imbalance = waves * m_eff / n_tasks

    mpki_eff = p.llc_mpki0 * np.asarray(mpki_scale, dtype=float)
    spi = node.core.seconds_per_instruction(f, p.cpi0, mpki_eff)
    instr = D * (p.instructions_per_byte + p.shuffle_factor * p.reduce_instr_per_byte)
    t_cpu = instr * spi * imbalance / m_eff

    disk_bytes = (
        D
        * (
            p.read_factor
            + p.spill_factor
            + (1.0 + constants.shuffle_reread_fraction) * p.shuffle_factor
            + p.output_factor
        )
        * np.asarray(disk_traffic_scale, dtype=float)
    )
    streams = m_eff + np.asarray(extra_streams, dtype=float)
    agg_bw = node.disk.aggregate_bw(streams, b)
    t_disk = disk_bytes / agg_bw

    net_bytes = D * p.shuffle_factor * remote_fraction
    t_net = net_bytes / node.nic_bw

    t_overhead = waves * constants.task_overhead_s

    ov = p.io_overlap

    def compose(t_cpu_):
        t_bound = np.maximum(np.maximum(t_cpu_, t_disk), t_net)
        t_sum = t_cpu_ + t_disk + t_net
        return t_overhead + ov * t_bound + (1.0 - ov) * t_sum

    # Memory-bandwidth saturation: if the job's DRAM traffic would
    # exceed the channel at the unthrottled rate, compute stretches by
    # the oversubscription factor (one fixed-point pass — the second
    # iterate changes durations by <1% for all studied profiles).
    mem_traffic = instr * (mpki_eff / 1000.0) * _CACHE_LINE * p.mem_stream_factor
    duration0 = compose(t_cpu)
    over = np.maximum((mem_traffic / duration0) / node.membw.achievable_bw, 1.0)
    t_cpu = t_cpu * over
    duration = compose(t_cpu)

    u_cpu = t_cpu / duration
    u_disk = t_disk / duration
    u_net = t_net / duration
    stall = node.core.stall_fraction(f, p.cpi0, mpki_eff)

    mem_demand = mem_traffic / duration
    u_mem = np.minimum(mem_demand / node.membw.achievable_bw, 1.0)

    pm = node.power
    activity = u_cpu * (1.0 - stall * (1.0 - pm.stall_power_fraction))
    core_power = m_eff * pm.core_max_power * _dyn_scale_lookup(node, f) * activity
    power = (
        pm.idle_power
        + core_power
        + pm.mem_max_power * u_mem
        + pm.disk_max_power * np.minimum(u_disk, 1.0)
    )
    energy = power * duration
    edp = energy * duration

    as_arr = np.asarray
    return JobMetrics(
        duration=duration,
        t_cpu=as_arr(t_cpu),
        t_disk=as_arr(t_disk),
        t_net=as_arr(t_net),
        t_overhead=as_arr(t_overhead),
        u_cpu=as_arr(u_cpu),
        u_disk=as_arr(u_disk),
        u_net=as_arr(u_net),
        mem_demand=as_arr(mem_demand),
        stall_fraction=as_arr(stall),
        m_eff=as_arr(m_eff),
        n_tasks=as_arr(n_tasks),
        waves=as_arr(waves),
        mpki_eff=as_arr(mpki_eff),
        core_power=as_arr(core_power),
        power=as_arr(power),
        energy=as_arr(energy),
        edp=as_arr(edp),
    )


def standalone_metrics_scalar(
    profile: AppProfile,
    data_bytes: float,
    frequency: float,
    block_size: float,
    n_mappers: float,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    mpki_scale: float = 1.0,
    disk_traffic_scale: float = 1.0,
    extra_streams: float = 0.0,
    remote_fraction: float | None = None,
) -> ScalarJobMetrics:
    """Scalar-in/scalar-out twin of :func:`standalone_metrics`.

    Every expression mirrors the array path in the same operation
    order, so results are bit-identical to evaluating the NumPy kernel
    on 0-d inputs — both are IEEE-754 double arithmetic.  No array is
    allocated anywhere on this path.
    """
    D = float(data_bytes)
    f = float(frequency)
    b = float(block_size)
    m = float(n_mappers)
    if D <= 0:
        raise ValueError("data_bytes must be positive")
    if m < 1:
        raise ValueError("n_mappers must be >= 1")
    if remote_fraction is None:
        remote_fraction = constants.remote_shuffle_fraction

    p = profile
    n_tasks = float(math.ceil(D / b))
    m_eff = min(m, n_tasks)
    waves = float(math.ceil(n_tasks / m_eff))
    imbalance = waves * m_eff / n_tasks

    mpki_eff = p.llc_mpki0 * float(mpki_scale)
    lat = node.core.effective_latency_s
    spi = p.cpi0 / f + (mpki_eff / 1000.0) * lat
    instr = D * (p.instructions_per_byte + p.shuffle_factor * p.reduce_instr_per_byte)
    t_cpu = instr * spi * imbalance / m_eff

    disk_bytes = (
        D
        * (
            p.read_factor
            + p.spill_factor
            + (1.0 + constants.shuffle_reread_fraction) * p.shuffle_factor
            + p.output_factor
        )
        * float(disk_traffic_scale)
    )
    streams = m_eff + float(extra_streams)
    disk = node.disk
    eff = b / (b + disk.half_extent)
    interleave = 1.0 / (1.0 + disk.seek_penalty * max(streams - 1.0, 0.0))
    agg_bw = disk.peak_bw * eff * interleave if streams > 0 else 0.0
    t_disk = disk_bytes / agg_bw

    net_bytes = D * p.shuffle_factor * remote_fraction
    t_net = net_bytes / node.nic_bw

    t_overhead = waves * constants.task_overhead_s

    ov = p.io_overlap

    def compose(t_cpu_: float) -> float:
        t_bound = max(max(t_cpu_, t_disk), t_net)
        t_sum = t_cpu_ + t_disk + t_net
        return t_overhead + ov * t_bound + (1.0 - ov) * t_sum

    mem_traffic = instr * (mpki_eff / 1000.0) * _CACHE_LINE * p.mem_stream_factor
    duration0 = compose(t_cpu)
    over = max((mem_traffic / duration0) / node.membw.achievable_bw, 1.0)
    t_cpu = t_cpu * over
    duration = compose(t_cpu)

    u_cpu = t_cpu / duration
    u_disk = t_disk / duration
    u_net = t_net / duration
    stall = ((mpki_eff / 1000.0) * lat) / spi

    mem_demand = mem_traffic / duration
    u_mem = min(mem_demand / node.membw.achievable_bw, 1.0)

    pm = node.power
    activity = u_cpu * (1.0 - stall * (1.0 - pm.stall_power_fraction))
    core_power = m_eff * pm.core_max_power * _dyn_scale_scalar(node, f) * activity
    power = (
        pm.idle_power
        + core_power
        + pm.mem_max_power * u_mem
        + pm.disk_max_power * min(u_disk, 1.0)
    )
    energy = power * duration
    edp = energy * duration

    return ScalarJobMetrics(
        duration=duration,
        t_cpu=t_cpu,
        t_disk=t_disk,
        t_net=t_net,
        t_overhead=t_overhead,
        u_cpu=u_cpu,
        u_disk=u_disk,
        u_net=u_net,
        mem_demand=mem_demand,
        stall_fraction=stall,
        m_eff=m_eff,
        n_tasks=n_tasks,
        waves=waves,
        mpki_eff=mpki_eff,
        core_power=core_power,
        power=power,
        energy=energy,
        edp=edp,
    )


def _cache_coupling(
    pa: AppProfile, ma, pb: AppProfile, mb, node: NodeSpec, constants: SimConstants
) -> tuple[np.ndarray, np.ndarray]:
    """Module-aware LLC contention → per-job MPKI inflation.

    The Atom C2758 exposes its L2 as four 2-core *modules*, not one
    monolithic LLC, so core-partitioned co-runners only contend for
    cache on modules their core allocations both touch.  An even 4+4
    split shares no module (zero inflation); odd splits share one.
    The inflation on the shared fraction uses the pressure-proportional
    power-law model of :class:`repro.hardware.cache.SharedCacheModel`.
    """
    ma = np.asarray(ma, dtype=float)
    mb = np.asarray(mb, dtype=float)
    cores_per_module = 2.0
    n_modules = node.n_cores / cores_per_module
    mods_a = np.ceil(ma / cores_per_module)
    mods_b = np.ceil(mb / cores_per_module)
    shared = np.maximum(mods_a + mods_b - n_modules, 0.0)
    frac_a = shared / mods_a
    frac_b = shared / mods_b

    pres_a = pa.cache_pressure * ma
    pres_b = pb.cache_pressure * mb
    floor = constants.cache_share_floor
    share_a = np.clip(pres_a / (pres_a + pres_b), floor, 1.0 - floor)
    share_b = 1.0 - share_a
    infl_a = node.cache.mpki_inflation(share_a, pa.cache_alpha)
    infl_b = node.cache.mpki_inflation(share_b, pb.cache_alpha)
    scale_a = 1.0 + frac_a * (infl_a - 1.0)
    scale_b = 1.0 + frac_b * (infl_b - 1.0)
    return scale_a, scale_b


def _footprint_coupling(
    pa: AppProfile, ma, pb: AppProfile, mb, node: NodeSpec, constants: SimConstants
) -> np.ndarray:
    """Memory overcommit → shared disk-traffic multiplier."""
    footprint = np.asarray(ma, dtype=float) * pa.footprint_per_task + np.asarray(
        mb, dtype=float
    ) * pb.footprint_per_task
    over = np.maximum(footprint / node.available_memory_bytes - 1.0, 0.0)
    return 1.0 + constants.swap_penalty * over


@dataclass(frozen=True)
class ColocationContext:
    """Per-job coupling parameters for a set of co-resident jobs."""

    mpki_scale: np.ndarray  # one per job
    disk_traffic_scale: np.ndarray  # shared, broadcast per job
    extra_streams: np.ndarray  # co-runners' stream counts, per job


def colocation_context(
    profiles: list[AppProfile],
    mappers: list[float],
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
) -> ColocationContext:
    """Coupling parameters for ``k`` co-located jobs on one node.

    Generalises the pairwise couplings (module-aware LLC inflation,
    footprint overcommit, disk stream interleaving) to any number of
    co-runners; with ``k = 1`` everything degenerates to the neutral
    standalone context.  Used by the discrete-event engine, whose
    running set changes over time.
    """
    if len(profiles) != len(mappers):
        raise ValueError("profiles and mappers must have equal length")
    if not profiles:
        raise ValueError("need at least one job")
    m = np.asarray(mappers, dtype=float)
    if np.any(m < 1):
        raise ValueError("mapper counts must be >= 1")
    k = len(profiles)

    cores_per_module = 2.0
    n_modules = node.n_cores / cores_per_module
    mods = np.ceil(m / cores_per_module)
    shared = max(float(mods.sum() - n_modules), 0.0)
    frac = np.minimum(shared / mods, 1.0)

    pres = np.array([p.cache_pressure for p in profiles]) * m
    floor = constants.cache_share_floor
    share = np.clip(pres / pres.sum(), floor, 1.0 - floor) if k > 1 else np.ones(1)
    alphas = np.array([p.cache_alpha for p in profiles])
    infl = np.array(
        [float(node.cache.mpki_inflation(share[i], alphas[i])) for i in range(k)]
    )
    mpki_scale = 1.0 + (frac * (infl - 1.0) if k > 1 else np.zeros(k))

    footprint = float(
        sum(m[i] * profiles[i].footprint_per_task for i in range(k))
    )
    over = max(footprint / node.available_memory_bytes - 1.0, 0.0)
    disk_scale = np.full(k, 1.0 + constants.swap_penalty * over)

    extra = m.sum() - m
    return ColocationContext(
        mpki_scale=np.asarray(mpki_scale),
        disk_traffic_scale=disk_scale,
        extra_streams=np.asarray(extra),
    )


def _npsum(vals: list[float]) -> float:
    """Sum a small float list exactly like ``np.ndarray.sum`` would.

    NumPy's reduction is sequential below 8 elements but switches to an
    8-accumulator pairwise scheme at length >= 8; the scalar context
    path must match the array path bit-for-bit, so lengths >= 8 defer
    to NumPy itself (one tiny allocation on a rare path).
    """
    if len(vals) < 8:
        total = 0.0
        for v in vals:
            total += v
        return total
    return float(np.asarray(vals, dtype=float).sum())


def colocation_context_scalar(
    profiles: list[AppProfile],
    mappers: list[float],
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
) -> list[tuple[float, float, float]]:
    """Scalar twin of :func:`colocation_context` for the event engine.

    Returns one ``(mpki_scale, disk_traffic_scale, extra_streams)``
    tuple per job, bit-identical to the array path (which the
    consistency tests assert), without allocating any arrays for the
    common small running sets.
    """
    if len(profiles) != len(mappers):
        raise ValueError("profiles and mappers must have equal length")
    if not profiles:
        raise ValueError("need at least one job")
    m = [float(x) for x in mappers]
    if any(x < 1 for x in m):
        raise ValueError("mapper counts must be >= 1")
    k = len(profiles)

    cores_per_module = 2.0
    n_modules = node.n_cores / cores_per_module
    mods = [float(math.ceil(x / cores_per_module)) for x in m]
    shared = max(_npsum(mods) - n_modules, 0.0)

    total_m = _npsum(m)
    footprint = 0.0
    for i in range(k):
        footprint += m[i] * profiles[i].footprint_per_task
    over = max(footprint / node.available_memory_bytes - 1.0, 0.0)
    disk_scale = 1.0 + constants.swap_penalty * over

    if k == 1:
        return [(1.0, disk_scale, total_m - m[0])]

    pres = [profiles[i].cache_pressure * m[i] for i in range(k)]
    pres_total = _npsum(pres)
    floor = constants.cache_share_floor
    cache = node.cache
    out = []
    for i in range(k):
        share = min(max(pres[i] / pres_total, floor), 1.0 - floor)
        # np.power, not **: NumPy's pow differs from libm by ULPs, and
        # the array path evaluates mpki_inflation per job on 0-d inputs.
        infl = min(
            max(float(np.power(min(share, 1.0), -profiles[i].cache_alpha)), 1.0),
            cache.max_inflation,
        )
        frac = min(shared / mods[i], 1.0)
        mpki_scale = 1.0 + frac * (infl - 1.0)
        out.append((mpki_scale, disk_scale, total_m - m[i]))
    return out


def _metric_as_float(value) -> float:
    return value if type(value) is float else float(np.asarray(value))


def fluid_stretch(
    jobs: list[JobMetrics | ScalarJobMetrics], node: NodeSpec = ATOM_C2758
) -> float:
    """Common slowdown of co-resident jobs from shared-resource demand.

    ``max(1, Σu_disk, Σu_net, Σdemand_mem / capacity)`` — the same rule
    :func:`pair_metrics` applies in closed form, exposed for the
    discrete-event engine.  Accepts array-backed and scalar metrics.
    """
    if not jobs:
        return 1.0
    u_disk = sum(_metric_as_float(j.u_disk) for j in jobs)
    u_net = sum(_metric_as_float(j.u_net) for j in jobs)
    u_mem = sum(_metric_as_float(j.mem_demand) for j in jobs) / node.membw.achievable_bw
    return max(1.0, u_disk, u_net, u_mem)


def pair_metrics(
    profile_a: AppProfile,
    data_a,
    freq_a,
    block_a,
    mappers_a,
    profile_b: AppProfile,
    data_b,
    freq_b,
    block_b,
    mappers_b,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    remote_fraction: float | None = None,
) -> PairMetrics:
    """Evaluate a co-located pair under (grids of) configurations.

    Mapper counts must satisfy ``m_a + m_b <= node.n_cores`` — cores are
    partitioned between the two applications, so CPU is not a contended
    resource; disk, NIC, DRAM bandwidth and LLC capacity are.
    """
    ma = np.asarray(mappers_a, dtype=float)
    mb = np.asarray(mappers_b, dtype=float)
    if np.any(ma + mb > node.n_cores):
        raise ValueError("core partition exceeds the node's core count")

    mpki_scale_a, mpki_scale_b = _cache_coupling(
        profile_a, ma, profile_b, mb, node, constants
    )
    disk_scale = _footprint_coupling(profile_a, ma, profile_b, mb, node, constants)

    job_a = standalone_metrics(
        profile_a, data_a, freq_a, block_a, ma,
        node=node, constants=constants,
        mpki_scale=mpki_scale_a, disk_traffic_scale=disk_scale,
        extra_streams=mb, remote_fraction=remote_fraction,
    )
    job_b = standalone_metrics(
        profile_b, data_b, freq_b, block_b, mb,
        node=node, constants=constants,
        mpki_scale=mpki_scale_b, disk_traffic_scale=disk_scale,
        extra_streams=ma, remote_fraction=remote_fraction,
    )

    cap = node.membw.achievable_bw
    u_mem_pair = (job_a.mem_demand + job_b.mem_demand) / cap
    u_disk_pair = job_a.u_disk + job_b.u_disk
    u_net_pair = job_a.u_net + job_b.u_net
    stretch = np.maximum(
        1.0, np.maximum(u_disk_pair, np.maximum(u_net_pair, u_mem_pair))
    )

    t_short = np.minimum(job_a.duration, job_b.duration)
    t_long = np.maximum(job_a.duration, job_b.duration)
    t_first_done = stretch * t_short
    makespan = t_first_done + (t_long - t_short)
    duration_a = np.where(
        job_a.duration <= job_b.duration, t_first_done, makespan
    )
    duration_b = np.where(
        job_b.duration <= job_a.duration, t_first_done, makespan
    )

    pm = node.power
    # Overlap segment: both jobs progress at rate 1/stretch, so their
    # per-unit-time resource occupancy scales by 1/stretch (the binding
    # resource runs at exactly 1.0).
    p_overlap = (
        pm.idle_power
        + (job_a.core_power + job_b.core_power) / stretch
        + pm.mem_max_power * np.minimum(u_mem_pair / stretch, 1.0)
        + pm.disk_max_power * np.minimum(u_disk_pair / stretch, 1.0)
    )
    # Tail segment: the longer job alone (still with its co-location
    # cache/footprint context — a documented approximation).
    a_is_long = job_a.duration > job_b.duration
    tail_core = np.where(a_is_long, job_a.core_power, job_b.core_power)
    tail_mem = np.where(
        a_is_long,
        np.minimum(job_a.mem_demand / cap, 1.0),
        np.minimum(job_b.mem_demand / cap, 1.0),
    )
    tail_disk = np.where(a_is_long, job_a.u_disk, job_b.u_disk)
    p_tail = (
        pm.idle_power
        + tail_core
        + pm.mem_max_power * tail_mem
        + pm.disk_max_power * np.minimum(tail_disk, 1.0)
    )
    energy = p_overlap * t_first_done + p_tail * (t_long - t_short)
    edp = energy * makespan

    return PairMetrics(
        makespan=np.asarray(makespan),
        energy=np.asarray(energy),
        edp=np.asarray(edp),
        stretch=np.asarray(stretch),
        t_first_done=np.asarray(t_first_done),
        duration_a=np.asarray(duration_a),
        duration_b=np.asarray(duration_b),
        job_a=job_a,
        job_b=job_b,
    )


def serial_pair_edp(job_a: JobMetrics, job_b: JobMetrics) -> np.ndarray:
    """EDP of running two (already evaluated) jobs back to back.

    This is the ILAO composition rule: makespan is the sum of the two
    durations, energy the sum of the two whole-node energies.
    """
    makespan = job_a.duration + job_b.duration
    energy = job_a.energy + job_b.energy
    return np.asarray(energy * makespan)


def distributed_metrics(
    profile: AppProfile,
    total_bytes,
    n_nodes: int,
    frequency,
    block_size,
    n_mappers,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
) -> Mapping[str, np.ndarray]:
    """A job spread over ``n_nodes`` nodes (the §8 scalability runs).

    Each node processes ``total / n_nodes`` bytes; a straggler factor
    models skew growing with scale; the remote shuffle fraction is
    ``(n − 1)/n``.  Returns makespan, whole-cluster energy and EDP.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    share = np.asarray(total_bytes, dtype=float) / n_nodes
    remote = (n_nodes - 1) / n_nodes
    jm = standalone_metrics(
        profile, share, frequency, block_size, n_mappers,
        node=node, constants=constants, remote_fraction=remote,
    )
    straggle = 1.0 + constants.straggler_coeff * np.log2(n_nodes) if n_nodes > 1 else 1.0
    makespan = jm.duration * straggle
    energy = jm.power * makespan * n_nodes
    return {
        "makespan": np.asarray(makespan),
        "energy": np.asarray(energy),
        "edp": np.asarray(energy * makespan),
        "per_node": jm,
    }
