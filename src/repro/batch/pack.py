"""ScenarioBatch: lift declarative scenarios into SoA buffers and back.

The conformance layer's :class:`~repro.conformance.scenarios.Scenario`
is data already — plain knobs, no engine objects — so a batch of them
transposes naturally into structure-of-arrays form: one contiguous
float64 array per knob, indexed ``(scenario, job-slot)``, padded to the
widest scenario in the batch.  Padded slots are filled with **copies of
slot 0** rather than zeros: every lane then carries valid kernel inputs
(a DVFS frequency the dynamic-power lookup accepts, a positive data
size), and the boolean :attr:`ScenarioBatch.mask` is the single source
of truth for which slots are real.  All cross-slot reductions in
:mod:`repro.batch.kernel` mask padded lanes to exact ``0.0`` terms, so
padding never perturbs a result.

:meth:`ScenarioBatch.scenarios` inverts the packing exactly — knob
integers round-trip through float64 unharmed (all studied sizes are far
below 2⁵³) and fault plans/recorder modes ride along as metadata — so
``pack → unpack`` is the identity (property-tested in
``tests/test_batch_property.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter

import numpy as np

from repro.batch.kernel import ProfileSoA
from repro.conformance.scenarios import Scenario, ScenarioJob
from repro.faults.plan import FaultEvent
from repro.workloads.base import AppProfile
from repro.workloads.registry import get_app


@dataclass(frozen=True)
class ScenarioBatch:
    """A batch of scenarios in structure-of-arrays form.

    Array fields are ``(S, K)`` float64 (``S`` scenarios, ``K`` job
    slots = the widest scenario); everything a kernel touches is a
    contiguous array, everything reconstruction needs but the kernel
    does not (app codes, fault plans, recorder modes) is tuple
    metadata.
    """

    n_nodes: np.ndarray  # (S,) int64
    n_jobs: np.ndarray  # (S,) int64
    data_bytes: np.ndarray  # (S, K) float64
    frequency: np.ndarray
    block_size: np.ndarray
    n_mappers: np.ndarray
    submit_time: np.ndarray
    profile_idx: np.ndarray  # (S, K) int64 into :attr:`profiles`
    #: Unique application profiles, first-seen order.
    profiles: tuple[AppProfile, ...]
    #: App code per profile slot (parallel to :attr:`profiles`).
    profile_codes: tuple[str, ...]
    fault_events: tuple[tuple[FaultEvent, ...], ...]
    recorders: tuple[str, ...]
    #: Per-scenario node-class names (empty = default homogeneous).
    node_classes: tuple[tuple[str, ...], ...] = ()

    def __len__(self) -> int:
        return int(self.n_nodes.shape[0])

    @property
    def width(self) -> int:
        return int(self.data_bytes.shape[1])

    @property
    def mask(self) -> np.ndarray:
        """(S, K) bool: True where a job slot is real, False where padded."""
        return np.arange(self.width)[None, :] < self.n_jobs[:, None]

    def profile_soa(self) -> ProfileSoA:
        """Per-slot profile constants, gathered into (S, K) lanes."""
        return ProfileSoA.from_profiles(self.profiles).take(self.profile_idx)

    def base_soa(self) -> ProfileSoA:
        """The unique-profile table (1-D), for custom gathers."""
        return ProfileSoA.from_profiles(self.profiles)

    @classmethod
    def from_scenarios(cls, scenarios: list[Scenario]) -> "ScenarioBatch":
        """Pack scenarios into SoA buffers (padded slots copy slot 0)."""
        if not scenarios:
            raise ValueError("need at least one scenario")
        S = len(scenarios)
        K = max(len(s.jobs) for s in scenarios)
        profiles: list[AppProfile] = []
        codes: list[str] = []
        slot_of: dict[str, int] = {}

        def profile_slot(code: str) -> int:
            hit = slot_of.get(code)
            if hit is None:
                hit = slot_of[code] = len(profiles)
                profiles.append(get_app(code).profile)
                codes.append(code)
            return hit

        # One flat pass with a C-implemented attrgetter, then a single
        # bulk np.array conversion: this is the batch path's packing
        # cost, so per-slot Python overhead is kept to one getter call
        # and one dict lookup per job.
        getter = attrgetter(
            "data_bytes", "frequency", "block_size", "n_mappers", "submit_time"
        )
        if K == 1:
            padded = [s.jobs[0] for s in scenarios]
        else:
            padded = [
                j
                for s in scenarios
                for j in s.jobs + (s.jobs[0],) * (K - len(s.jobs))
            ]
        vals = np.array([getter(j) for j in padded], dtype=np.float64)
        vals = vals.reshape(S, K, 5)
        profile_idx = np.array(
            [profile_slot(j.code) for j in padded], dtype=np.int64
        ).reshape(S, K)
        return cls(
            n_nodes=np.array([s.n_nodes for s in scenarios], dtype=np.int64),
            n_jobs=np.array([len(s.jobs) for s in scenarios], dtype=np.int64),
            data_bytes=np.ascontiguousarray(vals[:, :, 0]),
            frequency=np.ascontiguousarray(vals[:, :, 1]),
            block_size=np.ascontiguousarray(vals[:, :, 2]),
            n_mappers=np.ascontiguousarray(vals[:, :, 3]),
            submit_time=np.ascontiguousarray(vals[:, :, 4]),
            profile_idx=profile_idx,
            profiles=tuple(profiles),
            profile_codes=tuple(codes),
            fault_events=tuple(s.fault_events for s in scenarios),
            recorders=tuple(s.recorder for s in scenarios),
            node_classes=tuple(s.node_classes for s in scenarios),
        )

    def scenarios(self) -> list[Scenario]:
        """Unpack back into scenario objects — the exact inverse of
        :meth:`from_scenarios` (asserted by the round-trip property
        tests)."""
        out: list[Scenario] = []
        for i in range(len(self)):
            jobs = tuple(
                ScenarioJob(
                    code=self.profile_codes[int(self.profile_idx[i, j])],
                    data_bytes=int(self.data_bytes[i, j]),
                    frequency=float(self.frequency[i, j]),
                    block_size=int(self.block_size[i, j]),
                    n_mappers=int(self.n_mappers[i, j]),
                    submit_time=float(self.submit_time[i, j]),
                )
                for j in range(int(self.n_jobs[i]))
            )
            out.append(
                Scenario(
                    n_nodes=int(self.n_nodes[i]),
                    jobs=jobs,
                    fault_events=self.fault_events[i],
                    recorder=self.recorders[i],
                    node_classes=(
                        self.node_classes[i] if self.node_classes else ()
                    ),
                )
            )
        return out
