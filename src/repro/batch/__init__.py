"""repro.batch — vectorised structure-of-arrays scenario evaluation.

The discrete-event engine answers "what happens in this one run"; this
package answers "what happens in these four thousand runs" in a handful
of NumPy passes.  Three layers:

* :mod:`repro.batch.kernel` — SoA twins of the cost-model kernels
  (per-lane application profiles, contiguous float64, numba-ready);
* :mod:`repro.batch.pack` — :class:`ScenarioBatch`, the pack/unpack
  bridge between declarative scenarios and SoA buffers;
* :mod:`repro.batch.engine` — :func:`evaluate_scenarios` with
  ``backend={"event", "scalar", "batch"}`` and per-class vectorised
  solvers, falling back to the event engine on shapes the closed forms
  do not cover.

The event engine remains the reference: the batch backend is
differentially tested against it (and the PR-5 analytic oracles) to
1e-9 on every solvable scenario class — see ``docs/TESTING.md``.
"""

from repro.batch.engine import (
    BACKENDS,
    BatchOutcome,
    SOLVABLE_CASES,
    classify,
    evaluate_scenarios,
)
from repro.batch.kernel import (
    PROFILE_FIELDS,
    ProfileSoA,
    colocation_context_soa,
    node_state_soa,
    pair_metrics_soa,
    solo_disk_scale,
    standalone_metrics_soa,
)
from repro.batch.pack import ScenarioBatch

__all__ = [
    "BACKENDS",
    "BatchOutcome",
    "PROFILE_FIELDS",
    "ProfileSoA",
    "SOLVABLE_CASES",
    "ScenarioBatch",
    "classify",
    "colocation_context_soa",
    "evaluate_scenarios",
    "node_state_soa",
    "pair_metrics_soa",
    "solo_disk_scale",
    "standalone_metrics_soa",
]
