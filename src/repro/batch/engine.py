"""Batched scenario evaluation with selectable backends.

:func:`evaluate_scenarios` is the batch layer's front door: it takes a
list of conformance scenarios and a ``backend`` —

``"event"``
    one discrete-event engine run per scenario (the reference);
``"scalar"``
    per-scenario closed-form solving on the scalar kernel — the same
    solver structure as the batch path but one float at a time (the
    baseline ``bench_batch_sweep_4096`` measures speedup against);
``"batch"``
    scenarios are classified, grouped by class, packed into
    :class:`~repro.batch.pack.ScenarioBatch` buffers, and each class is
    solved with *one* vectorised pass over the SoA kernel.

The batch solvers mirror the engine's fluid semantics exactly — the
same cost kernel arithmetic (via :mod:`repro.batch.kernel`), the same
segment composition the PR-5 oracles derive from the model spec — so on
every oracle-solvable scenario class the batch backend agrees with the
event engine to well under 1e-9 (``tests/test_batch_equivalence.py``),
and a batch of one is bit-identical to the scalar backend.  Scenario
shapes outside the solvable classes (fault plans, general multi-node
arrival tangles, co-resident sets of 8+ jobs) fall back to the event
engine per scenario, counted on the telemetry object — a fallback is
honest work, never a silent wrong answer.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.batch.kernel import (
    NodeSoA,
    ProfileSoA,
    colocation_context_soa,
    hetero_total_energy,
    node_state_soa,
    solo_disk_scale,
    standalone_metrics_soa,
)
from repro.batch.pack import ScenarioBatch
from repro.conformance.scenarios import Scenario
from repro.faults.injector import FaultInjector
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.engine import ClusterEngine
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.costmodel import (
    ScalarJobMetrics,
    colocation_context_scalar,
    standalone_metrics_scalar,
)
from repro.workloads.registry import get_app

#: Backends callers may request.
BACKENDS = ("event", "scalar", "batch")

#: Minimum arrival gap past the predecessor's completion for the chain
#: solver (mirrors the oracle's ``_CHAIN_MARGIN_S``); closer arrivals
#: overlap in the engine and fall back to it.
_CHAIN_MARGIN_S = 1e-6

#: Scenario classes the closed-form solvers handle; anything else runs
#: on the event engine.
SOLVABLE_CASES = ("single", "pair", "queued", "parallel", "symmetric", "chain")


class BatchOutcome(NamedTuple):
    """One scenario's results, whichever backend produced them.

    A ``NamedTuple`` rather than a dataclass: the batch path constructs
    thousands of these per call and tuple construction stays off the
    profile where frozen-dataclass ``__init__`` does not.
    """

    case: str  # classification label ("event" = unsolvable shape)
    backend: str  # backend that actually produced the numbers
    fallback: bool  # True when a non-event request ran on the engine
    makespan: float
    total_energy: float
    edp: float
    busy_seconds: float  # node 0 busy time
    job_energies: tuple[float, ...]  # per job, scenario order


def classify(scenario: Scenario, *, node: NodeSpec = ATOM_C2758) -> str:
    """Which closed-form solver covers ``scenario`` (``"event"``: none).

    Mirrors the oracle dispatch of
    :func:`repro.conformance.oracles.oracle_expectation`, plus one
    batch-specific guard: co-resident sets of 8+ jobs hit NumPy's
    pairwise summation inside the engine's scalar context and are
    routed to the event engine to preserve bit-level agreement.
    ``"chain"`` is a *candidate* — the arrival-gap condition needs the
    solved completion times, so the solver validates it numerically and
    falls back on violation.

    A scenario with an explicit node-class roster overrides ``node``
    with its own node 0 (first-fit is class-oblivious-leftmost, so
    co-fit keys on node 0's core count); a spill job that does not fit
    node 1's cores either is not closed-form solvable.
    """
    if scenario.fault_events:
        return "event"
    roster = scenario.roster()
    if roster is not None:
        node = roster[0]
    jobs = scenario.jobs
    if len(jobs) == 1:
        return "single"
    if len(jobs) >= 8:
        return "event"
    submits = {j.submit_time for j in jobs}
    if len(submits) == 1:
        total_mappers = sum(j.n_mappers for j in jobs)
        if len(jobs) == 2:
            if total_mappers <= node.n_cores:
                return "pair"
            if scenario.n_nodes == 1:
                return "queued"
            if roster is not None and jobs[1].n_mappers > roster[1].n_cores:
                return "event"
            return "parallel"
        if total_mappers <= node.n_cores and len({j.identity() for j in jobs}) == 1:
            return "symmetric"
        return "event"
    return "chain"


# --------------------------------------------------------- event backend
def _run_event(
    scenario: Scenario,
    *,
    node: NodeSpec,
    constants: SimConstants,
    case: str,
    fallback: bool,
) -> BatchOutcome:
    """One reference discrete-event run, summarised as a BatchOutcome.

    Mirrors :func:`repro.conformance.scenarios.run_scenario` but passes
    ``node``/``constants`` through to the engine so non-default
    hardware evaluates consistently across backends.  A scenario's own
    node-class roster, when named, takes precedence over ``node``.
    """
    cluster = ClusterEngine(
        scenario.n_nodes,
        node,
        constants=constants,
        recorder=scenario.recorder,
        roster=scenario.roster(),
    )
    specs = scenario.specs()
    for spec in specs:
        cluster.submit(spec)
    if scenario.fault_events:
        FaultInjector(cluster, scenario.plan()).install()
    results = cluster.run()
    makespan = cluster.makespan
    by_label = {r.spec.label: r.energy_joules for r in results}
    busy = cluster.conformance_snapshot()["nodes"][0]["busy_seconds"]
    return BatchOutcome(
        case=case,
        backend="event",
        fallback=fallback,
        makespan=makespan,
        total_energy=cluster.total_energy(makespan),
        edp=cluster.edp(),
        busy_seconds=busy,
        job_energies=tuple(by_label[s.label] for s in specs),
    )


# -------------------------------------------------------- scalar backend
def _single_state_scalar(m: ScalarJobMetrics, node: NodeSpec) -> tuple[float, float]:
    """(stretch, watts) of one job alone — the engine's segment state."""
    bw = node.membw.achievable_bw
    s = max(max(max(1.0, m.u_disk), m.u_net), m.mem_demand / bw)
    pm = node.power
    return s, (
        pm.idle_power
        + m.core_power / s
        + pm.mem_max_power * min(m.mem_demand / s / bw, 1.0)
        + pm.disk_max_power * min(m.u_disk / s, 1.0)
    )


def _set_state_scalar(
    metrics: list[ScalarJobMetrics], node: NodeSpec
) -> tuple[float, float]:
    """(stretch, watts) of a co-resident set, slot-order accumulation."""
    bw = node.membw.achievable_bw
    sum_disk = 0.0
    sum_net = 0.0
    sum_mem = 0.0
    sum_core = 0.0
    for m in metrics:
        sum_disk += m.u_disk
        sum_net += m.u_net
        sum_mem += m.mem_demand
        sum_core += m.core_power
    s = max(max(max(1.0, sum_disk), sum_net), sum_mem / bw)
    pm = node.power
    watts = (
        pm.idle_power
        + sum_core / s
        + pm.mem_max_power * min(sum_mem / s / bw, 1.0)
        + pm.disk_max_power * min(sum_disk / s, 1.0)
    )
    return s, watts


def _eval_scalar_set(
    scenario: Scenario,
    indices: list[int],
    node: NodeSpec,
    constants: SimConstants,
) -> list[ScalarJobMetrics]:
    """Context couplings, then each selected job, on the scalar kernel."""
    jobs = [scenario.jobs[i] for i in indices]
    profiles = [get_app(j.code).profile for j in jobs]
    ctx = colocation_context_scalar(
        profiles, [float(j.n_mappers) for j in jobs], node=node, constants=constants
    )
    return [
        standalone_metrics_scalar(
            profile,
            job.data_bytes,
            job.frequency,
            job.block_size,
            job.n_mappers,
            node=node,
            constants=constants,
            mpki_scale=mpki,
            disk_traffic_scale=disk,
            extra_streams=extra,
        )
        for profile, job, (mpki, disk, extra) in zip(profiles, jobs, ctx)
    ]


def _scalar_outcome(
    scenario: Scenario,
    case: str,
    makespan: float,
    busy_energy: float,
    busy_time_all: float,
    busy_seconds: float,
    job_energies: dict[int, float],
    node: NodeSpec,
    roster: tuple[NodeSpec, ...] | None = None,
    busy_by_node: dict[int, float] | None = None,
) -> BatchOutcome:
    """Fold one scenario's accumulated quantities into cluster totals.

    Identical composition to the batch solvers' final lines, so a batch
    of one reproduces this bit for bit.  On a heterogeneous roster the
    idle term accumulates per node (each class draws its own idle
    power) through the same :func:`hetero_total_energy` helper the
    batch solvers call.
    """
    if roster is not None:
        total = float(
            hetero_total_energy(
                busy_energy,
                makespan,
                NodeSoA.from_specs(roster),
                busy_by_node or {},
            )
        )
    else:
        idle = node.power.idle_power
        total = busy_energy + idle * (scenario.n_nodes * makespan - busy_time_all)
    return BatchOutcome(
        case=case,
        backend="scalar",
        fallback=False,
        makespan=makespan,
        total_energy=total,
        edp=total * makespan,
        busy_seconds=busy_seconds,
        job_energies=tuple(
            job_energies[i] for i in range(len(scenario.jobs))
        ),
    )


def _solve_scalar(
    scenario: Scenario,
    case: str,
    *,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> BatchOutcome | None:
    """Closed-form solve on the scalar kernel; None → use the engine.

    Each case performs the *same floating-point operations* as its
    vectorised twin in the batch backend, one scenario at a time — the
    bit-for-bit batch-of-1 property tests rest on that, so changes here
    and in the ``_solve_*_batch`` functions must stay in lockstep.

    ``roster`` (a genuinely mixed node roster; pass None when all nodes
    are equal) switches the idle-energy fold to per-node accumulation;
    all busy work runs on node 0's hardware (= ``node``) except the
    parallel case, whose second job runs on ``roster[1]``.
    """
    jobs = scenario.jobs
    if case in ("single", "chain"):
        order = sorted(
            range(len(jobs)), key=lambda i: (jobs[i].submit_time, i)
        )
        clock = 0.0
        busy = 0.0
        busy_energy = 0.0
        makespan = 0.0
        started = False
        energies: dict[int, float] = {}
        for idx in order:
            job = jobs[idx]
            if started and job.submit_time < clock + _CHAIN_MARGIN_S:
                return None  # overlapping arrivals: not a true chain
            start = max(job.submit_time, clock)
            [m] = _eval_scalar_set(scenario, [idx], node, constants)
            s, w = _single_state_scalar(m, node)
            wall = m.duration * s
            end = start + wall
            energies[idx] = w * wall
            busy = busy + wall
            busy_energy = busy_energy + w * wall
            makespan = end
            clock = end
            started = True
        return _scalar_outcome(
            scenario, case, makespan, busy_energy, busy, busy, energies, node,
            roster, {0: busy},
        )
    if case == "pair":
        t0 = jobs[0].submit_time
        pair = _eval_scalar_set(scenario, [0, 1], node, constants)
        s_pair, w_pair = _set_state_scalar(pair, node)
        d0, d1 = pair[0].duration, pair[1].duration
        short_is_0 = d0 <= d1
        d_short = d0 if short_is_0 else d1
        d_long = d1 if short_is_0 else d0
        long_ = 1 if short_is_0 else 0
        t_overlap = d_short * s_pair
        first_done = t0 + t_overlap
        half = w_pair * t_overlap / 2.0
        [solo] = _eval_scalar_set(scenario, [long_], node, constants)
        s_solo, w_solo = _single_state_scalar(solo, node)
        # Unconditional tail, exactly 0.0 for equal durations — the
        # same branch-free form the batch solver uses.
        fraction_left = (d_long - d_short) / d_long
        t_tail = fraction_left * solo.duration * s_solo
        makespan = first_done + t_tail
        busy = t_overlap + t_tail
        busy_energy = w_pair * t_overlap + w_solo * t_tail
        tail_energy = w_solo * t_tail
        energies = {long_: half + tail_energy, 1 - long_: half}
        return _scalar_outcome(
            scenario, case, makespan, busy_energy, busy, busy, energies, node,
            roster, {0: busy},
        )
    if case == "queued":
        t0 = jobs[0].submit_time
        [ma] = _eval_scalar_set(scenario, [0], node, constants)
        sa, wa = _single_state_scalar(ma, node)
        [mb] = _eval_scalar_set(scenario, [1], node, constants)
        sb, wb = _single_state_scalar(mb, node)
        finish_a = t0 + ma.duration * sa
        finish_b = finish_a + mb.duration * sb
        e_a = wa * (finish_a - t0)
        e_b = wb * (finish_b - finish_a)
        busy = (finish_a - t0) + (finish_b - finish_a)
        return _scalar_outcome(
            scenario, case, finish_b, e_a + e_b, busy, busy,
            {0: e_a, 1: e_b}, node, roster, {0: busy},
        )
    if case == "parallel":
        t0 = jobs[0].submit_time
        node1 = roster[1] if roster is not None else node
        [m0] = _eval_scalar_set(scenario, [0], node, constants)
        s0, w0 = _single_state_scalar(m0, node)
        [m1] = _eval_scalar_set(scenario, [1], node1, constants)
        s1, w1 = _single_state_scalar(m1, node1)
        wall0 = m0.duration * s0
        wall1 = m1.duration * s1
        e0 = w0 * wall0
        e1 = w1 * wall1
        makespan = max(t0 + wall0, t0 + wall1)
        return _scalar_outcome(
            scenario, case, makespan, e0 + e1, wall0 + wall1, wall0,
            {0: e0, 1: e1}, node, roster, {0: wall0, 1: wall1},
        )
    if case == "symmetric":
        t0 = jobs[0].submit_time
        metrics = _eval_scalar_set(scenario, list(range(len(jobs))), node, constants)
        s, w = _set_state_scalar(metrics, node)
        wall = metrics[0].duration * s
        k = float(len(jobs))
        makespan = t0 + wall
        per_job = w * wall / k
        energies = {i: per_job for i in range(len(jobs))}
        return _scalar_outcome(
            scenario, case, makespan, w * wall, wall, wall, energies, node,
            roster, {0: wall},
        )
    return None


# --------------------------------------------------------- batch backend
def _gather_soa(base: ProfileSoA, idx: np.ndarray) -> ProfileSoA:
    return base.take(idx)


def _single_state_batch(metrics, node: NodeSpec) -> tuple[np.ndarray, np.ndarray]:
    """Vector twin of :func:`_single_state_scalar` over (S,) lanes."""
    bw = node.membw.achievable_bw
    s = np.maximum(
        np.maximum(np.maximum(1.0, metrics.u_disk), metrics.u_net),
        metrics.mem_demand / bw,
    )
    pm = node.power
    watts = (
        pm.idle_power
        + metrics.core_power / s
        + pm.mem_max_power * np.minimum(metrics.mem_demand / s / bw, 1.0)
        + pm.disk_max_power * np.minimum(metrics.u_disk / s, 1.0)
    )
    return s, watts


def _eval_solo_column(
    batch: ScenarioBatch,
    base: ProfileSoA,
    rows: np.ndarray,
    cols: np.ndarray,
    node: NodeSpec,
    constants: SimConstants,
):
    """Evaluate job slot ``cols[i]`` of scenario ``rows[i]`` alone."""
    p = _gather_soa(base, batch.profile_idx[rows, cols])
    m = batch.n_mappers[rows, cols]
    dscale = solo_disk_scale(p, m, node=node, constants=constants)
    metrics = standalone_metrics_soa(
        p,
        batch.data_bytes[rows, cols],
        batch.frequency[rows, cols],
        batch.block_size[rows, cols],
        m,
        node=node,
        constants=constants,
        disk_traffic_scale=dscale,
    )
    return metrics


def _solve_chain_batch(
    batch: ScenarioBatch,
    *,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Single jobs and back-to-back chains, one slot column at a time.

    Returns the result columns plus a per-scenario violation flag for
    arrivals inside the running job's window (those re-run on the event
    engine — the closed form does not cover overlap).
    """
    S, K = batch.data_bytes.shape
    mask = batch.mask
    base = batch.base_soa()
    rows = np.arange(S)
    submit_key = np.where(mask, batch.submit_time, np.inf)
    order = np.argsort(submit_key, axis=1, kind="stable")

    clock = np.zeros(S)
    busy = np.zeros(S)
    busy_energy = np.zeros(S)
    makespan = np.zeros(S)
    violated = np.zeros(S, dtype=bool)
    started = np.zeros(S, dtype=bool)
    job_energy = np.zeros((S, K))
    for j in range(K):
        cols = order[:, j]
        active = mask[rows, cols]
        if not np.any(active):
            break
        submit = batch.submit_time[rows, cols]
        violated |= active & started & (submit < clock + _CHAIN_MARGIN_S)
        start = np.maximum(submit, clock)
        metrics = _eval_solo_column(batch, base, rows, cols, node, constants)
        s, w = _single_state_batch(metrics, node)
        wall = metrics.duration * s
        end = start + wall
        job_energy[rows, cols] = np.where(active, w * wall, 0.0)
        busy = busy + np.where(active, wall, 0.0)
        busy_energy = busy_energy + np.where(active, w * wall, 0.0)
        makespan = np.where(active, end, makespan)
        clock = np.where(active, end, clock)
        started |= active
    if roster is not None:
        total = hetero_total_energy(
            busy_energy, makespan, NodeSoA.from_specs(roster), {0: busy}
        )
    else:
        idle = node.power.idle_power
        total = busy_energy + idle * (batch.n_nodes * makespan - busy)
    return (
        {
            "makespan": makespan,
            "total_energy": total,
            "edp": total * makespan,
            "busy_seconds": busy,
            "job_energy": job_energy,
        },
        violated,
    )


def _solve_pair_batch(
    batch: ScenarioBatch,
    *,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> dict[str, np.ndarray]:
    """Two simultaneous co-fitting jobs: overlap + recontexted solo tail."""
    S = len(batch)
    rows = np.arange(S)
    mask = batch.mask
    p = batch.profile_soa()
    ctx_mpki, ctx_disk, ctx_extra = colocation_context_soa(
        p, batch.n_mappers, mask, node=node, constants=constants
    )
    pair = standalone_metrics_soa(
        p,
        batch.data_bytes,
        batch.frequency,
        batch.block_size,
        batch.n_mappers,
        node=node,
        constants=constants,
        mpki_scale=ctx_mpki,
        disk_traffic_scale=ctx_disk,
        extra_streams=ctx_extra,
    )
    s_pair, w_pair = node_state_soa(pair, mask, node=node)
    d0 = pair.duration[:, 0]
    d1 = pair.duration[:, 1]
    short_is_0 = d0 <= d1
    d_short = np.where(short_is_0, d0, d1)
    d_long = np.where(short_is_0, d1, d0)
    long_col = np.where(short_is_0, 1, 0)

    t0 = batch.submit_time[:, 0]
    t_overlap = d_short * s_pair
    first_done = t0 + t_overlap
    half = w_pair * t_overlap / 2.0

    solo = _eval_solo_column(batch, batch.base_soa(), rows, long_col, node, constants)
    s_solo, w_solo = _single_state_batch(solo, node)
    # fraction_left is exactly 0.0 for equal durations, so the tail
    # terms vanish without a branch (the oracle's `if` made explicit).
    fraction_left = (d_long - d_short) / d_long
    t_tail = fraction_left * solo.duration * s_solo

    makespan = first_done + t_tail
    busy = t_overlap + t_tail
    busy_energy = w_pair * t_overlap + w_solo * t_tail
    if roster is not None:
        total = hetero_total_energy(
            busy_energy, makespan, NodeSoA.from_specs(roster), {0: busy}
        )
    else:
        idle = node.power.idle_power
        total = busy_energy + idle * (batch.n_nodes * makespan - busy)
    tail_energy = w_solo * t_tail
    job_energy = np.empty((S, 2))
    job_energy[:, 0] = np.where(short_is_0, half, half + tail_energy)
    job_energy[:, 1] = np.where(short_is_0, half + tail_energy, half)
    return {
        "makespan": makespan,
        "total_energy": total,
        "edp": total * makespan,
        "busy_seconds": busy,
        "job_energy": job_energy,
    }


def _solve_queued_batch(
    batch: ScenarioBatch,
    *,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> dict[str, np.ndarray]:
    """Two simultaneous non-co-fitting jobs on one node: FIFO back-to-back."""
    S = len(batch)
    rows = np.arange(S)
    base = batch.base_soa()
    t0 = batch.submit_time[:, 0]
    ma = _eval_solo_column(batch, base, rows, np.zeros(S, dtype=np.intp), node, constants)
    sa, wa = _single_state_batch(ma, node)
    mb = _eval_solo_column(batch, base, rows, np.ones(S, dtype=np.intp), node, constants)
    sb, wb = _single_state_batch(mb, node)
    finish_a = t0 + ma.duration * sa
    finish_b = finish_a + mb.duration * sb
    e_a = wa * (finish_a - t0)
    e_b = wb * (finish_b - finish_a)
    busy = (finish_a - t0) + (finish_b - finish_a)
    busy_energy = e_a + e_b
    if roster is not None:
        total = hetero_total_energy(
            busy_energy, finish_b, NodeSoA.from_specs(roster), {0: busy}
        )
    else:
        idle = node.power.idle_power
        total = busy_energy + idle * (batch.n_nodes * finish_b - busy)
    return {
        "makespan": finish_b,
        "total_energy": total,
        "edp": total * finish_b,
        "busy_seconds": busy,
        "job_energy": np.stack([e_a, e_b], axis=1),
    }


def _solve_parallel_batch(
    batch: ScenarioBatch,
    *,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> dict[str, np.ndarray]:
    """Two simultaneous non-co-fitting jobs, a node each.

    On a mixed roster job 1 evaluates against node 1's hardware — the
    one solvable shape where a second node class enters the physics
    rather than only the idle-power fold.
    """
    S = len(batch)
    rows = np.arange(S)
    base = batch.base_soa()
    node1 = roster[1] if roster is not None else node
    t0 = batch.submit_time[:, 0]
    m0 = _eval_solo_column(batch, base, rows, np.zeros(S, dtype=np.intp), node, constants)
    s0, w0 = _single_state_batch(m0, node)
    m1 = _eval_solo_column(batch, base, rows, np.ones(S, dtype=np.intp), node1, constants)
    s1, w1 = _single_state_batch(m1, node1)
    wall0 = m0.duration * s0
    wall1 = m1.duration * s1
    e0 = w0 * wall0
    e1 = w1 * wall1
    makespan = np.maximum(t0 + wall0, t0 + wall1)
    busy_energy = e0 + e1
    busy_all = wall0 + wall1
    if roster is not None:
        total = hetero_total_energy(
            busy_energy,
            makespan,
            NodeSoA.from_specs(roster),
            {0: wall0, 1: wall1},
        )
    else:
        idle = node.power.idle_power
        total = busy_energy + idle * (batch.n_nodes * makespan - busy_all)
    return {
        "makespan": makespan,
        "total_energy": total,
        "edp": total * makespan,
        "busy_seconds": wall0,  # node 0 runs job 0
        "job_energy": np.stack([e0, e1], axis=1),
    }


def _solve_symmetric_batch(
    batch: ScenarioBatch,
    *,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> dict[str, np.ndarray]:
    """k identical simultaneous jobs: one shared phase, even energy split."""
    S, K = batch.data_bytes.shape
    mask = batch.mask
    p = batch.profile_soa()
    ctx_mpki, ctx_disk, ctx_extra = colocation_context_soa(
        p, batch.n_mappers, mask, node=node, constants=constants
    )
    metrics = standalone_metrics_soa(
        p,
        batch.data_bytes,
        batch.frequency,
        batch.block_size,
        batch.n_mappers,
        node=node,
        constants=constants,
        mpki_scale=ctx_mpki,
        disk_traffic_scale=ctx_disk,
        extra_streams=ctx_extra,
    )
    s, w = node_state_soa(metrics, mask, node=node)
    t0 = batch.submit_time[:, 0]
    wall = metrics.duration[:, 0] * s
    k = batch.n_jobs.astype(float)
    makespan = t0 + wall
    busy_energy = w * wall
    if roster is not None:
        total = hetero_total_energy(
            busy_energy, makespan, NodeSoA.from_specs(roster), {0: wall}
        )
    else:
        idle = node.power.idle_power
        total = busy_energy + idle * (batch.n_nodes * makespan - wall)
    per_job = w * wall / k
    job_energy = np.where(mask, per_job[:, None], 0.0)
    return {
        "makespan": makespan,
        "total_energy": total,
        "edp": total * makespan,
        "busy_seconds": wall,
        "job_energy": job_energy,
    }


_BATCH_SOLVERS = {
    "single": _solve_chain_batch,
    "chain": _solve_chain_batch,
    "pair": _solve_pair_batch,
    "queued": _solve_queued_batch,
    "parallel": _solve_parallel_batch,
    "symmetric": _solve_symmetric_batch,
}


def _columns_to_outcomes(
    scenarios: list[Scenario],
    case: str,
    cols: dict[str, np.ndarray],
) -> list[BatchOutcome]:
    # Bulk-convert once (C loop) instead of one numpy-scalar cast per
    # field per scenario — this function is on the throughput path.
    makespan = cols["makespan"].tolist()
    total = cols["total_energy"].tolist()
    edp = cols["edp"].tolist()
    busy = cols["busy_seconds"].tolist()
    job_energy = cols["job_energy"].tolist()
    return [
        BatchOutcome(
            case,
            "batch",
            False,
            makespan[i],
            total[i],
            edp[i],
            busy[i],
            tuple(job_energy[i][: len(scenario.jobs)]),
        )
        for i, scenario in enumerate(scenarios)
    ]


def evaluate_scenarios(
    scenarios: list[Scenario],
    *,
    backend: str = "batch",
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    telemetry=None,
) -> list[BatchOutcome]:
    """Evaluate scenarios on the requested backend (see module doc).

    Results come back in input order whatever the internal grouping.
    ``telemetry``, when given, is a
    :class:`repro.telemetry.profiling.BatchTelemetry` and is updated in
    place.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; valid: {', '.join(BACKENDS)}")
    outcomes: list[BatchOutcome | None] = [None] * len(scenarios)

    def note(outcome: BatchOutcome) -> BatchOutcome:
        if telemetry is not None:
            telemetry.record_scenario(outcome.case, outcome.backend, outcome.fallback)
        return outcome

    if backend == "event":
        for i, s in enumerate(scenarios):
            outcomes[i] = note(
                _run_event(
                    s, node=node, constants=constants,
                    case=classify(s, node=node), fallback=False,
                )
            )
        return outcomes  # type: ignore[return-value]

    def roster_args(s: Scenario) -> tuple[NodeSpec, tuple[NodeSpec, ...] | None]:
        """(busy-node spec, mixed roster or None) for one scenario.

        A homogeneous explicit roster (all nodes one class) solves on
        the legacy single-node fold with that class's spec — same
        arithmetic shape as today, different constants — while a
        genuinely mixed roster switches the solvers to per-node idle
        accumulation.
        """
        roster = s.roster()
        if roster is None:
            return node, None
        return roster[0], (roster if len(set(roster)) > 1 else None)

    if backend == "scalar":
        for i, s in enumerate(scenarios):
            case = classify(s, node=node)
            node_s, mixed = roster_args(s)
            solved = (
                _solve_scalar(
                    s, case, node=node_s, constants=constants, roster=mixed
                )
                if case in SOLVABLE_CASES
                else None
            )
            if solved is None:
                solved = _run_event(
                    s, node=node, constants=constants, case=case, fallback=True
                )
            outcomes[i] = note(solved)
        return outcomes  # type: ignore[return-value]

    # backend == "batch": group by (class, roster) — every scenario of a
    # group shares one node-class tuple, so the whole group still solves
    # in one vectorised pass with group-constant node hardware.
    by_group: dict[tuple[str, tuple[str, ...]], list[int]] = {}
    cases = [classify(s, node=node) for s in scenarios]
    for i, (s, case) in enumerate(zip(scenarios, cases)):
        if case in _BATCH_SOLVERS:
            by_group.setdefault((case, s.node_classes), []).append(i)
        else:
            outcomes[i] = note(
                _run_event(s, node=node, constants=constants, case=case, fallback=True)
            )
    for case, classes in sorted(by_group):
        idxs = by_group[(case, classes)]
        group = [scenarios[i] for i in idxs]
        node_g, mixed = roster_args(group[0])
        packed = ScenarioBatch.from_scenarios(group)
        if telemetry is not None:
            telemetry.record_kernel(len(group))
        solver = _BATCH_SOLVERS[case]
        if solver is _solve_chain_batch:
            cols, violated = solver(
                packed, node=node_g, constants=constants, roster=mixed
            )
        else:
            cols = solver(packed, node=node_g, constants=constants, roster=mixed)
            violated = np.zeros(len(group), dtype=bool)
        solved = _columns_to_outcomes(group, case, cols)
        for local, i in enumerate(idxs):
            if violated[local]:
                outcomes[i] = note(
                    _run_event(
                        scenarios[i], node=node, constants=constants,
                        case=case, fallback=True,
                    )
                )
            else:
                outcomes[i] = note(solved[local])
    return outcomes  # type: ignore[return-value]
