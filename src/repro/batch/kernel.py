"""Structure-of-arrays cost kernel: whole scenario batches per call.

The scalar kernel (:func:`repro.model.costmodel.standalone_metrics_scalar`)
made *one* evaluation cheap; this module makes *thousands* cheap by
evaluating them together.  Every per-application constant that the
scalar path reads off an :class:`~repro.workloads.base.AppProfile`
becomes a lane of a :class:`ProfileSoA` — contiguous float64 arrays, one
slot per evaluated job — so a whole batch of (job, pair, frequency,
placement) scenarios flows through the same broadcastable NumPy
expressions the grid sweeps already use, with *per-lane* profiles
instead of one shared profile object.

Numerical contract
------------------
Every function here mirrors its scalar/broadcast twin in
:mod:`repro.model.costmodel` operation for operation.  IEEE-754
elementwise array arithmetic is identical to the same scalar arithmetic
per lane, so a batch of one is **bit-identical** to the scalar path
(``tests/test_batch_property.py`` asserts exact equality), and any
batch agrees with the discrete-event engine to well below the 1e-9
conformance bound.  Two details matter:

* sums over co-resident job slots accumulate **sequentially in slot
  order** — the same order :func:`~repro.model.costmodel._npsum` and
  the engine's segment-state loop add in (NumPy's pairwise reduction
  only kicks in at length >= 8, and the batch engine routes sets that
  large to the event engine);
* padded slots contribute exact ``0.0`` terms, which leave IEEE sums
  unchanged.

The layout is numba/Cython-ready: contiguous float64 arrays indexed
``(scenario, slot)``, no per-scenario Python objects anywhere in the
hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.costmodel import _CACHE_LINE, JobMetrics, _dyn_scale_lookup
from repro.workloads.base import AppProfile

#: Per-profile constants the kernel consumes, in ProfileSoA field order.
PROFILE_FIELDS: tuple[str, ...] = (
    "instructions_per_byte",
    "cpi0",
    "llc_mpki0",
    "read_factor",
    "spill_factor",
    "shuffle_factor",
    "output_factor",
    "reduce_instr_per_byte",
    "io_overlap",
    "cache_pressure",
    "cache_alpha",
    "mem_stream_factor",
    "footprint_per_task",
)


@dataclass(frozen=True)
class ProfileSoA:
    """Application profiles transposed into parallel float64 arrays.

    One slot per profile; :meth:`take` gathers slots into any shape, so
    a ``(scenario, job)`` index array turns the registry's profile list
    into per-lane kernel inputs with zero Python-object traffic.
    """

    instructions_per_byte: np.ndarray
    cpi0: np.ndarray
    llc_mpki0: np.ndarray
    read_factor: np.ndarray
    spill_factor: np.ndarray
    shuffle_factor: np.ndarray
    output_factor: np.ndarray
    reduce_instr_per_byte: np.ndarray
    io_overlap: np.ndarray
    cache_pressure: np.ndarray
    cache_alpha: np.ndarray
    mem_stream_factor: np.ndarray
    footprint_per_task: np.ndarray

    @classmethod
    def from_profiles(cls, profiles: Sequence[AppProfile]) -> "ProfileSoA":
        """Transpose a profile list into contiguous field arrays.

        ``cpi0`` is materialised exactly as the scalar property computes
        it (``1.0 / ipc0``), so downstream arithmetic matches bit for
        bit.
        """
        if not profiles:
            raise ValueError("need at least one profile")
        cols: dict[str, np.ndarray] = {}
        for name in PROFILE_FIELDS:
            if name == "cpi0":
                vals = [1.0 / p.ipc0 for p in profiles]
            else:
                vals = [float(getattr(p, name)) for p in profiles]
            cols[name] = np.ascontiguousarray(vals, dtype=np.float64)
        return cls(**cols)

    def take(self, indices) -> "ProfileSoA":
        """Gather profile slots by index (any shape, e.g. (S, K))."""
        idx = np.asarray(indices, dtype=np.intp)
        return ProfileSoA(
            **{
                name: np.ascontiguousarray(getattr(self, name)[idx])
                for name in PROFILE_FIELDS
            }
        )

    def __len__(self) -> int:
        return self.instructions_per_byte.shape[0] if self.instructions_per_byte.ndim else 1


#: Per-node-class constants the batch layer consumes, in NodeSoA order.
NODE_FIELDS: tuple[str, ...] = (
    "n_cores",
    "idle_power",
    "core_max_power",
    "mem_max_power",
    "disk_max_power",
    "membw",
    "nic_bw",
)


@dataclass(frozen=True)
class NodeSoA:
    """Node-class constants transposed into parallel float64 arrays.

    One lane per roster position, so heterogeneous batch folds (idle
    energy across a mixed roster, per-node bandwidth caps) read
    contiguous arrays instead of chasing ``NodeSpec`` attribute chains
    per node.  Built once per (case, roster) group by
    :meth:`from_specs`; :meth:`take` gathers lanes like
    :meth:`ProfileSoA.take` does.
    """

    n_cores: np.ndarray
    idle_power: np.ndarray
    core_max_power: np.ndarray
    mem_max_power: np.ndarray
    disk_max_power: np.ndarray
    membw: np.ndarray
    nic_bw: np.ndarray

    @classmethod
    def from_specs(cls, specs: Sequence[NodeSpec]) -> "NodeSoA":
        """Transpose a node roster into contiguous constant arrays."""
        if not specs:
            raise ValueError("need at least one node spec")
        cols = {
            "n_cores": [float(n.n_cores) for n in specs],
            "idle_power": [n.power.idle_power for n in specs],
            "core_max_power": [n.power.core_max_power for n in specs],
            "mem_max_power": [n.power.mem_max_power for n in specs],
            "disk_max_power": [n.power.disk_max_power for n in specs],
            "membw": [n.membw.achievable_bw for n in specs],
            "nic_bw": [float(n.nic_bw) for n in specs],
        }
        return cls(
            **{
                name: np.ascontiguousarray(cols[name], dtype=np.float64)
                for name in NODE_FIELDS
            }
        )

    def take(self, indices) -> "NodeSoA":
        """Gather node lanes by index (any shape)."""
        idx = np.asarray(indices, dtype=np.intp)
        return NodeSoA(
            **{
                name: np.ascontiguousarray(getattr(self, name)[idx])
                for name in NODE_FIELDS
            }
        )

    def __len__(self) -> int:
        return self.n_cores.shape[0] if self.n_cores.ndim else 1


def hetero_total_energy(busy_energy, makespan, nodes: NodeSoA, busy_by_node):
    """Cluster energy on a mixed roster: per-node idle accumulation.

    ``busy_by_node`` maps node id -> busy seconds on that node (float or
    per-scenario array); omitted nodes are fully idle.  The accumulation
    runs node-by-node in roster order with identical operations for
    float and array operands, so the scalar backend and a batch of one
    stay bit-identical on heterogeneous scenarios exactly as they do on
    the homogeneous fold.
    """
    total = busy_energy
    for node_id in range(len(nodes)):
        busy_here = busy_by_node.get(node_id, 0.0)
        total = total + nodes.idle_power[node_id] * (makespan - busy_here)
    return total


def standalone_metrics_soa(
    p: ProfileSoA,
    data_bytes,
    frequency,
    block_size,
    n_mappers,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    mpki_scale=1.0,
    disk_traffic_scale=1.0,
    extra_streams=0.0,
    remote_fraction: float | None = None,
) -> JobMetrics:
    """SoA twin of :func:`repro.model.costmodel.standalone_metrics`.

    Identical operation order, but every profile constant is an array
    lane of ``p`` instead of a Python attribute — so one call evaluates
    jobs of *different* applications together.  All inputs broadcast;
    the result is an ordinary (array-backed) :class:`JobMetrics`.
    """
    D = np.asarray(data_bytes, dtype=float)
    f = np.asarray(frequency, dtype=float)
    b = np.asarray(block_size, dtype=float)
    m = np.asarray(n_mappers, dtype=float)
    if np.any(D <= 0):
        raise ValueError("data_bytes must be positive")
    if np.any(m < 1):
        raise ValueError("n_mappers must be >= 1")
    if remote_fraction is None:
        remote_fraction = constants.remote_shuffle_fraction

    n_tasks = np.ceil(D / b)
    m_eff = np.minimum(m, n_tasks)
    waves = np.ceil(n_tasks / m_eff)
    imbalance = waves * m_eff / n_tasks

    mpki_eff = p.llc_mpki0 * np.asarray(mpki_scale, dtype=float)
    spi = node.core.seconds_per_instruction(f, p.cpi0, mpki_eff)
    instr = D * (p.instructions_per_byte + p.shuffle_factor * p.reduce_instr_per_byte)
    t_cpu = instr * spi * imbalance / m_eff

    disk_bytes = (
        D
        * (
            p.read_factor
            + p.spill_factor
            + (1.0 + constants.shuffle_reread_fraction) * p.shuffle_factor
            + p.output_factor
        )
        * np.asarray(disk_traffic_scale, dtype=float)
    )
    streams = m_eff + np.asarray(extra_streams, dtype=float)
    agg_bw = node.disk.aggregate_bw(streams, b)
    t_disk = disk_bytes / agg_bw

    net_bytes = D * p.shuffle_factor * remote_fraction
    t_net = net_bytes / node.nic_bw

    t_overhead = waves * constants.task_overhead_s

    ov = p.io_overlap

    def compose(t_cpu_):
        t_bound = np.maximum(np.maximum(t_cpu_, t_disk), t_net)
        t_sum = t_cpu_ + t_disk + t_net
        return t_overhead + ov * t_bound + (1.0 - ov) * t_sum

    mem_traffic = instr * (mpki_eff / 1000.0) * _CACHE_LINE * p.mem_stream_factor
    duration0 = compose(t_cpu)
    over = np.maximum((mem_traffic / duration0) / node.membw.achievable_bw, 1.0)
    t_cpu = t_cpu * over
    duration = compose(t_cpu)

    u_cpu = t_cpu / duration
    u_disk = t_disk / duration
    u_net = t_net / duration
    stall = node.core.stall_fraction(f, p.cpi0, mpki_eff)

    mem_demand = mem_traffic / duration
    u_mem = np.minimum(mem_demand / node.membw.achievable_bw, 1.0)

    pm = node.power
    activity = u_cpu * (1.0 - stall * (1.0 - pm.stall_power_fraction))
    core_power = m_eff * pm.core_max_power * _dyn_scale_lookup(node, f) * activity
    power = (
        pm.idle_power
        + core_power
        + pm.mem_max_power * u_mem
        + pm.disk_max_power * np.minimum(u_disk, 1.0)
    )
    energy = power * duration
    edp = energy * duration

    as_arr = np.asarray
    return JobMetrics(
        duration=as_arr(duration),
        t_cpu=as_arr(t_cpu),
        t_disk=as_arr(t_disk),
        t_net=as_arr(t_net),
        t_overhead=as_arr(t_overhead),
        u_cpu=as_arr(u_cpu),
        u_disk=as_arr(u_disk),
        u_net=as_arr(u_net),
        mem_demand=as_arr(mem_demand),
        stall_fraction=as_arr(stall),
        m_eff=as_arr(m_eff),
        n_tasks=as_arr(n_tasks),
        waves=as_arr(waves),
        mpki_eff=as_arr(mpki_eff),
        core_power=as_arr(core_power),
        power=as_arr(power),
        energy=as_arr(energy),
        edp=as_arr(edp),
    )


def colocation_context_soa(
    p: ProfileSoA,
    n_mappers: np.ndarray,
    active: np.ndarray,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SoA twin of :func:`~repro.model.costmodel.colocation_context_scalar`.

    ``p`` and ``n_mappers`` are ``(S, K)`` (scenario, co-resident slot)
    arrays; ``active`` is the boolean slot mask (padded slots must carry
    valid-but-ignored values).  Returns per-slot
    ``(mpki_scale, disk_traffic_scale, extra_streams)`` arrays of the
    same shape — bit-identical per scenario to the scalar context for
    co-resident sets of fewer than 8 jobs (larger sets hit NumPy's
    pairwise summation in ``_npsum`` and are the batch engine's event
    fallback).

    All cross-slot sums accumulate sequentially in slot order, exactly
    like the scalar path's Python loops; padded slots contribute
    ``0.0``, which leaves each partial sum unchanged.
    """
    m = np.asarray(n_mappers, dtype=float)
    active = np.asarray(active, dtype=bool)
    if m.ndim != 2 or m.shape != active.shape:
        raise ValueError("n_mappers and active must be matching (S, K) arrays")
    S, K = m.shape
    if K >= 8:
        raise ValueError(
            "co-resident sets of >= 8 jobs take NumPy's pairwise summation "
            "path in the scalar context; route them to the event engine"
        )
    if np.any(m[active] < 1):
        raise ValueError("mapper counts must be >= 1")

    cores_per_module = 2.0
    n_modules = node.n_cores / cores_per_module
    zeros = np.zeros(S)
    m_act = np.where(active, m, 0.0)
    mods = np.where(active, np.ceil(m / cores_per_module), 0.0)

    mods_sum = zeros
    total_m = zeros
    footprint = zeros
    pres_total = zeros
    pres = np.where(active, p.cache_pressure * m, 0.0)
    for j in range(K):
        mods_sum = mods_sum + mods[:, j]
        total_m = total_m + m_act[:, j]
        footprint = footprint + np.where(active[:, j], m[:, j] * p.footprint_per_task[:, j], 0.0)
        pres_total = pres_total + pres[:, j]
    shared = np.maximum(mods_sum - n_modules, 0.0)

    over = np.maximum(footprint / node.available_memory_bytes - 1.0, 0.0)
    disk_scale_row = 1.0 + constants.swap_penalty * over

    n_jobs = active.sum(axis=1)
    solo = n_jobs == 1

    floor = constants.cache_share_floor
    with np.errstate(divide="ignore", invalid="ignore"):
        share = np.minimum(np.maximum(pres / pres_total[:, None], floor), 1.0 - floor)
        infl = np.minimum(
            np.maximum(np.power(np.minimum(share, 1.0), -p.cache_alpha), 1.0),
            node.cache.max_inflation,
        )
        frac = np.minimum(shared[:, None] / mods, 1.0)
    mpki_scale = 1.0 + frac * (infl - 1.0)
    mpki_scale = np.where(solo[:, None] | ~active, 1.0, mpki_scale)

    disk_scale = np.where(active, disk_scale_row[:, None], 1.0)
    extra = np.where(active, total_m[:, None] - m_act, 0.0)
    return mpki_scale, disk_scale, extra


def node_state_soa(
    metrics: JobMetrics,
    active: np.ndarray,
    *,
    node: NodeSpec = ATOM_C2758,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched twin of the engine's segment state: (stretch, node watts).

    ``metrics`` holds ``(S, K)`` per-slot arrays; ``active`` masks real
    slots.  Mirrors ``NodeEngine._segment_state``: sequential slot-order
    demand sums, then the same max chain and power composition.
    """
    active = np.asarray(active, dtype=bool)
    S, K = active.shape
    bw = node.membw.achievable_bw
    zeros = np.zeros(S)
    sum_disk = zeros
    sum_net = zeros
    sum_mem = zeros
    sum_core = zeros
    for j in range(K):
        on = active[:, j]
        sum_disk = sum_disk + np.where(on, metrics.u_disk[:, j], 0.0)
        sum_net = sum_net + np.where(on, metrics.u_net[:, j], 0.0)
        sum_mem = sum_mem + np.where(on, metrics.mem_demand[:, j], 0.0)
        sum_core = sum_core + np.where(on, metrics.core_power[:, j], 0.0)
    s = np.maximum(np.maximum(np.maximum(1.0, sum_disk), sum_net), sum_mem / bw)
    pm = node.power
    core = sum_core / s
    u_disk = np.minimum(sum_disk / s, 1.0)
    u_mem = np.minimum(sum_mem / s / bw, 1.0)
    watts = (
        pm.idle_power
        + core
        + pm.mem_max_power * u_mem
        + pm.disk_max_power * u_disk
    )
    return s, watts


def solo_disk_scale(
    p: ProfileSoA,
    n_mappers,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
) -> np.ndarray:
    """The ``k = 1`` context's disk-traffic scale (mpki 1, extra 0).

    Mirrors the scalar context's single-job branch: the job's own
    footprint can still overcommit memory and spill to disk.
    """
    m = np.asarray(n_mappers, dtype=float)
    footprint = np.zeros(np.broadcast(m, p.footprint_per_task).shape)
    footprint = footprint + m * p.footprint_per_task
    over = np.maximum(footprint / node.available_memory_bytes - 1.0, 0.0)
    return 1.0 + constants.swap_penalty * over


# ----------------------------------------------------- pair sweep kernel
def _cache_coupling_soa(
    pa: ProfileSoA, ma, pb: ProfileSoA, mb, node: NodeSpec, constants: SimConstants
) -> tuple[np.ndarray, np.ndarray]:
    """SoA twin of ``costmodel._cache_coupling`` (per-lane profiles)."""
    ma = np.asarray(ma, dtype=float)
    mb = np.asarray(mb, dtype=float)
    cores_per_module = 2.0
    n_modules = node.n_cores / cores_per_module
    mods_a = np.ceil(ma / cores_per_module)
    mods_b = np.ceil(mb / cores_per_module)
    shared = np.maximum(mods_a + mods_b - n_modules, 0.0)
    frac_a = shared / mods_a
    frac_b = shared / mods_b

    pres_a = pa.cache_pressure * ma
    pres_b = pb.cache_pressure * mb
    floor = constants.cache_share_floor
    share_a = np.clip(pres_a / (pres_a + pres_b), floor, 1.0 - floor)
    share_b = 1.0 - share_a
    infl_a = node.cache.mpki_inflation(share_a, pa.cache_alpha)
    infl_b = node.cache.mpki_inflation(share_b, pb.cache_alpha)
    scale_a = 1.0 + frac_a * (infl_a - 1.0)
    scale_b = 1.0 + frac_b * (infl_b - 1.0)
    return scale_a, scale_b


def _footprint_coupling_soa(
    pa: ProfileSoA, ma, pb: ProfileSoA, mb, node: NodeSpec, constants: SimConstants
) -> np.ndarray:
    """SoA twin of ``costmodel._footprint_coupling``."""
    footprint = np.asarray(ma, dtype=float) * pa.footprint_per_task + np.asarray(
        mb, dtype=float
    ) * pb.footprint_per_task
    over = np.maximum(footprint / node.available_memory_bytes - 1.0, 0.0)
    return 1.0 + constants.swap_penalty * over


def pair_metrics_soa(
    pa: ProfileSoA,
    data_a,
    freq_a,
    block_a,
    mappers_a,
    pb: ProfileSoA,
    data_b,
    freq_b,
    block_b,
    mappers_b,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    remote_fraction: float | None = None,
):
    """SoA twin of :func:`repro.model.costmodel.pair_metrics`.

    Accepts per-lane profile arrays so one call sweeps *many pairs* at
    once; mirrors the closed-form pair composition operation for
    operation and returns the same :class:`PairMetrics` record.
    """
    from repro.model.costmodel import PairMetrics

    ma = np.asarray(mappers_a, dtype=float)
    mb = np.asarray(mappers_b, dtype=float)
    if np.any(ma + mb > node.n_cores):
        raise ValueError("core partition exceeds the node's core count")

    mpki_scale_a, mpki_scale_b = _cache_coupling_soa(pa, ma, pb, mb, node, constants)
    disk_scale = _footprint_coupling_soa(pa, ma, pb, mb, node, constants)

    job_a = standalone_metrics_soa(
        pa, data_a, freq_a, block_a, ma,
        node=node, constants=constants,
        mpki_scale=mpki_scale_a, disk_traffic_scale=disk_scale,
        extra_streams=mb, remote_fraction=remote_fraction,
    )
    job_b = standalone_metrics_soa(
        pb, data_b, freq_b, block_b, mb,
        node=node, constants=constants,
        mpki_scale=mpki_scale_b, disk_traffic_scale=disk_scale,
        extra_streams=ma, remote_fraction=remote_fraction,
    )

    cap = node.membw.achievable_bw
    u_mem_pair = (job_a.mem_demand + job_b.mem_demand) / cap
    u_disk_pair = job_a.u_disk + job_b.u_disk
    u_net_pair = job_a.u_net + job_b.u_net
    stretch = np.maximum(
        1.0, np.maximum(u_disk_pair, np.maximum(u_net_pair, u_mem_pair))
    )

    t_short = np.minimum(job_a.duration, job_b.duration)
    t_long = np.maximum(job_a.duration, job_b.duration)
    t_first_done = stretch * t_short
    makespan = t_first_done + (t_long - t_short)
    duration_a = np.where(job_a.duration <= job_b.duration, t_first_done, makespan)
    duration_b = np.where(job_b.duration <= job_a.duration, t_first_done, makespan)

    pm = node.power
    p_overlap = (
        pm.idle_power
        + (job_a.core_power + job_b.core_power) / stretch
        + pm.mem_max_power * np.minimum(u_mem_pair / stretch, 1.0)
        + pm.disk_max_power * np.minimum(u_disk_pair / stretch, 1.0)
    )
    a_is_long = job_a.duration > job_b.duration
    tail_core = np.where(a_is_long, job_a.core_power, job_b.core_power)
    tail_mem = np.where(
        a_is_long,
        np.minimum(job_a.mem_demand / cap, 1.0),
        np.minimum(job_b.mem_demand / cap, 1.0),
    )
    tail_disk = np.where(a_is_long, job_a.u_disk, job_b.u_disk)
    p_tail = (
        pm.idle_power
        + tail_core
        + pm.mem_max_power * tail_mem
        + pm.disk_max_power * np.minimum(tail_disk, 1.0)
    )
    energy = p_overlap * t_first_done + p_tail * (t_long - t_short)
    edp = energy * makespan

    return PairMetrics(
        makespan=np.asarray(makespan),
        energy=np.asarray(energy),
        edp=np.asarray(edp),
        stretch=np.asarray(stretch),
        t_first_done=np.asarray(t_first_done),
        duration_a=np.asarray(duration_a),
        duration_b=np.asarray(duration_b),
        job_a=job_a,
        job_b=job_b,
    )
