"""Service clocks: deterministic virtual time and scaled wall time.

The service core never reads ``time.time()`` directly — it asks its
clock.  Two implementations:

* :class:`VirtualClock` — time advances only when told to.  Arrival
  timestamps come from the request payloads (a seeded stream), so an
  entire service run is a pure function of its inputs and can be
  replayed bit-for-bit against the offline engine.
* :class:`WallClock` — simulated time tracks ``time.monotonic()``
  scaled by ``time_scale``, for interactive/live deployments where
  determinism is not required.
"""

from __future__ import annotations

import time


class VirtualClock:
    """Deterministic clock: ``now`` is the largest time ever observed.

    ``observe(t)`` folds an arrival timestamp in; ``advance_to(t)``
    moves the clock explicitly.  Time never goes backwards — a stale
    timestamp simply leaves the clock where it was (the service layer
    decides whether to reject it).
    """

    deterministic = True

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def observe(self, t: float) -> float:
        """Fold an external timestamp in; returns the (new) now."""
        if t > self._now:
            self._now = float(t)
        return self._now

    def advance_to(self, t: float) -> float:
        return self.observe(t)


class WallClock:
    """Simulated seconds = (monotonic wall seconds since start) × scale."""

    deterministic = False

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        self.time_scale = time_scale
        self._epoch = time.monotonic()
        self._floor = 0.0  # monotonicity guard across scale edits

    def now(self) -> float:
        t = (time.monotonic() - self._epoch) * self.time_scale
        if t > self._floor:
            self._floor = t
        return self._floor

    def observe(self, t: float) -> float:
        """Wall time ignores external timestamps (now is authoritative)."""
        return self.now()


def make_clock(kind: str, *, time_scale: float = 1.0):
    """Clock factory keyed by :class:`ServiceConfig.clock`."""
    if kind == "virtual":
        return VirtualClock()
    if kind == "wall":
        return WallClock(time_scale)
    raise ValueError(f"unknown clock kind {kind!r}; valid: virtual, wall")
