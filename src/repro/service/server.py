"""Asyncio HTTP front end over a :class:`ClusterService`.

A deliberately small HTTP/1.1 implementation on raw asyncio streams —
no third-party web framework, connection-per-request (``Connection:
close``), JSON in and JSON out.  Enough protocol for the CLI client,
``curl``, and the test suite; the deterministic logic all lives in the
transport-agnostic core.

Endpoints
---------
``POST /submit``
    One submission request (see :mod:`repro.service.requests`); the
    response is the service ack.  The request is acked as soon as the
    admission decision is made — placement and simulation progress
    happen behind the queue.
``POST /batch``
    A JSON list of submission requests; response is the list of acks
    (one RTT for bulk load generators).
``GET /metrics``
    Nested :class:`~repro.telemetry.registry.MetricsRegistry` snapshot
    (``engine``, ``service``, ``tenants`` namespaces).
``GET /trace``
    Chrome-trace JSON of the attached tracer (load in Perfetto).
``GET /status`` / ``GET /healthz``
    Live service state / liveness probe.
``POST /advance`` (virtual clock only)
    ``{"time": t}`` — advance the simulation to ``t``.
``POST /drain``
    Finish every accepted job; responds with the run summary.
``POST /shutdown``
    Stop the server loop after responding.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.config import ServiceConfig
from repro.service.core import ClusterService

#: Largest accepted request body (a 64 MiB batch is ~100k requests).
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


async def _read_request(reader: asyncio.StreamReader) -> tuple[str, str, bytes]:
    """Parse one HTTP/1.1 request: (method, path, body)."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("client closed before sending a request")
    try:
        method, target, _version = request_line.decode("latin-1").split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = 0
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, body


def _json_body(body: bytes):
    if not body:
        raise HttpError(400, "missing JSON body")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise HttpError(400, f"invalid JSON body: {exc}") from None


class ServiceServer:
    """One HTTP listener bound to one :class:`ClusterService`."""

    def __init__(
        self,
        service: ClusterService | None = None,
        *,
        config: ServiceConfig | None = None,
    ) -> None:
        if service is None:
            service = ClusterService(config or ServiceConfig.from_env())
        self.service = service
        self.config = service.config
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._pump_task: asyncio.Task | None = None

    # ---------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ServiceServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.config.clock == "wall":
            self._pump_task = asyncio.ensure_future(self._pump_loop())
        return self

    async def _pump_loop(self) -> None:
        """Wall-clock mode: periodically dispatch + advance the engine."""
        try:
            while not self._stop.is_set():
                self.service.pump()
                await asyncio.sleep(self.config.pump_interval_s)
        except asyncio.CancelledError:  # pragma: no cover - shutdown race
            pass

    async def serve_until_shutdown(self) -> None:
        """Serve until ``POST /shutdown`` (or :meth:`stop`)."""
        assert self._server is not None, "call start() first"
        await self._stop.wait()
        await self.stop()

    async def stop(self) -> None:
        self._stop.set()
        if self._pump_task is not None:
            self._pump_task.cancel()
            self._pump_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------ routing
    def _route(self, method: str, path: str, body: bytes) -> tuple[int, object]:
        service = self.service
        if method == "GET":
            if path in ("/healthz", "/"):
                return 200, {"ok": True}
            if path == "/metrics":
                return 200, service.metrics_snapshot()
            if path == "/status":
                return 200, service.status()
            if path == "/trace":
                return 200, service.trace_payload()
            raise HttpError(404, f"no such endpoint: GET {path}")
        if method == "POST":
            if path == "/submit":
                payload = _json_body(body)
                return 200, service.submit_request(payload)
            if path == "/batch":
                payload = _json_body(body)
                if not isinstance(payload, list):
                    raise HttpError(400, "batch body must be a JSON list")
                return 200, [service.submit_request(p) for p in payload]
            if path == "/advance":
                payload = _json_body(body)
                t = payload.get("time") if isinstance(payload, dict) else None
                if not isinstance(t, (int, float)) or isinstance(t, bool):
                    raise HttpError(400, "advance body needs a numeric 'time'")
                try:
                    service.advance_to(float(t))
                except RuntimeError as exc:
                    raise HttpError(400, str(exc)) from None
                return 200, {"ok": True, "engine_now": service.cluster.now}
            if path == "/drain":
                return 200, service.drain()
            if path == "/shutdown":
                self._stop.set()
                return 200, {"ok": True, "stopping": True}
            raise HttpError(404, f"no such endpoint: POST {path}")
        raise HttpError(405, f"method {method} not supported")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await _read_request(reader)
                status, payload = self._route(method, path, body)
            except HttpError as exc:
                status, payload = exc.status, {"ok": False, "error": exc.message}
            except ConnectionError:
                return
            except Exception as exc:  # pragma: no cover - defensive
                status, payload = 500, {"ok": False, "error": repr(exc)}
            data = json.dumps(payload).encode()
            head = (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + data)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


async def serve_async(config: ServiceConfig | None = None) -> None:
    """Start a server from ``config`` and run until shutdown."""
    server = ServiceServer(config=config)
    await server.start()
    print(
        f"repro.service listening on http://{server.config.host}:{server.port} "
        f"({server.config.scheduler} scheduler, {server.config.clock} clock, "
        f"{server.config.n_nodes} nodes)"
    )
    await server.serve_until_shutdown()


def serve(config: ServiceConfig | None = None) -> None:
    """Blocking entry point for ``python -m repro serve``."""
    asyncio.run(serve_async(config))
