"""Admission control: deterministic token buckets and depth caps.

Every decision is a pure function of ``(config, tenant history,
arrival time)`` — no wall clock, no randomness — so a seeded request
stream produces the same accept/reject sequence on every run, which is
what the property suite pins.  Checks are ordered cheapest-and-
broadest first, and a token is only consumed by an *accepted* request
(a request bounced for queue depth must not burn the tenant's budget):

1. cluster-wide in-flight cap (``max_pending``) — protects the engine;
2. per-tenant in-flight cap (``max_inflight``) — queue-depth bound;
3. per-tenant token bucket (``rate_per_s``/``burst``) — rate limit.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Rejection reasons, in decision order.
REJECT_CAPACITY = "capacity"
REJECT_QUEUE_DEPTH = "queue_depth"
REJECT_RATE_LIMIT = "rate_limit"


@dataclass(frozen=True)
class AdmissionDecision:
    accepted: bool
    reason: str | None = None  # None when accepted

    def as_ack(self) -> dict:
        out: dict = {"accepted": self.accepted}
        if self.reason is not None:
            out["reason"] = self.reason
        return out


_ACCEPT = AdmissionDecision(True)
#: A token short of 1.0 by a float ulp still admits: the bucket is
#: refilled with ``dt * rate`` products whose rounding must not turn a
#: nominally admissible request into a rejection.
_TOKEN_EPS = 1e-9


class TokenBucket:
    """Classic token bucket on simulated time.

    Starts full.  ``try_take(t)`` refills by ``(t - last) * rate``
    (capped at ``burst``) and takes one token when available.  ``t``
    must be non-decreasing — the service enforces monotone arrivals
    before consulting admission.
    """

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_t = 0.0

    def _refill(self, t: float) -> None:
        dt = t - self.last_t
        if dt < 0:
            raise ValueError(
                f"token bucket time went backwards: {t} < {self.last_t}"
            )
        self.last_t = t
        if self.rate == float("inf"):
            self.tokens = self.burst
        else:
            self.tokens = min(self.burst, self.tokens + dt * self.rate)

    def try_take(self, t: float) -> bool:
        self._refill(t)
        if self.tokens >= 1.0 - _TOKEN_EPS:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Stateless decision logic over the tenant/bucket state it is shown.

    The controller holds only the limits; the mutable per-tenant state
    (bucket, in-flight count) lives on the tenant so it is snapshotted
    and reported alongside the tenant's other counters.
    """

    def __init__(
        self,
        *,
        rate_per_s: float,
        burst: float,
        max_inflight: int,
        max_pending: int,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.max_inflight = max_inflight
        self.max_pending = max_pending

    def new_bucket(self) -> TokenBucket:
        return TokenBucket(self.rate_per_s, self.burst)

    def decide(self, tenant, t: float, *, total_inflight: int) -> AdmissionDecision:
        """Accept/reject one arrival of ``tenant`` at time ``t``.

        ``tenant`` is a :class:`repro.service.tenants.TenantState`;
        ``total_inflight`` is the cluster-wide accepted-not-completed
        count *before* this request.
        """
        if total_inflight >= self.max_pending:
            return AdmissionDecision(False, REJECT_CAPACITY)
        if tenant.inflight >= self.max_inflight:
            return AdmissionDecision(False, REJECT_QUEUE_DEPTH)
        if not tenant.bucket.try_take(t):
            return AdmissionDecision(False, REJECT_RATE_LIMIT)
        return _ACCEPT
