"""Per-tenant session state: queues, counters, and high-water marks.

A *tenant* is one traffic source (a user, a team, a synthetic load
generator).  Tenants are created on first use and never forgotten:
their counters are the service's per-tenant telemetry, and their
in-flight bound is what the admission layer enforces.  Dispatch into
the engine preserves *global arrival order* across tenants (that is
what keeps the online run bit-identical to the offline one) — per-
tenant fairness is enforced upstream, by admission isolation: one
tenant's limits are a function of that tenant's own traffic only.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.mapreduce.job import JobSpec
from repro.service.admission import AdmissionController, TokenBucket


@dataclass
class TenantState:
    """One tenant's live accounting."""

    name: str
    bucket: TokenBucket
    #: Accepted but not yet dispatched into the engine (wall mode only;
    #: the virtual-clock service dispatches synchronously).
    queue: deque[JobSpec] = field(default_factory=deque)
    #: Accepted but not yet completed (the admission queue-depth bound).
    inflight: int = 0
    inflight_highwater: int = 0
    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    rejections_by_reason: dict[str, int] = field(default_factory=dict)
    completed: int = 0
    last_arrival: float = 0.0

    def on_accept(self, t: float) -> None:
        self.accepted += 1
        self.inflight += 1
        self.last_arrival = t
        if self.inflight > self.inflight_highwater:
            self.inflight_highwater = self.inflight

    def on_reject(self, reason: str, t: float) -> None:
        self.rejected += 1
        self.last_arrival = t
        self.rejections_by_reason[reason] = (
            self.rejections_by_reason.get(reason, 0) + 1
        )

    def on_complete(self) -> None:
        if self.inflight <= 0:
            raise RuntimeError(
                f"tenant {self.name!r} completed a job it never had in flight"
            )
        self.inflight -= 1
        self.completed += 1

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "inflight": self.inflight,
            "inflight_highwater": self.inflight_highwater,
            "queued": len(self.queue),
            "rejections_by_reason": dict(sorted(self.rejections_by_reason.items())),
        }


class TenantRegistry:
    """Tenants by name, created on first use with fresh buckets."""

    def __init__(self, admission: AdmissionController) -> None:
        self._admission = admission
        self._tenants: dict[str, TenantState] = {}

    def get(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = TenantState(name=name, bucket=self._admission.new_bucket())
            self._tenants[name] = state
        return state

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())

    @property
    def names(self) -> list[str]:
        return sorted(self._tenants)

    @property
    def total_inflight(self) -> int:
        return sum(t.inflight for t in self._tenants.values())

    @property
    def inflight_highwater(self) -> int:
        return max(
            (t.inflight_highwater for t in self._tenants.values()), default=0
        )

    def as_dict(self) -> dict[str, dict]:
        return {name: self._tenants[name].as_dict() for name in self.names}
