"""Stdlib HTTP client for the service (``repro submit`` / admin CLI).

Built on :class:`http.client.HTTPConnection` — one connection per
request to match the server's ``Connection: close`` discipline.  All
methods return the decoded JSON payload; non-2xx responses raise
:class:`ServiceClientError` carrying the server's error message.
"""

from __future__ import annotations

import http.client
import json


class ServiceClientError(RuntimeError):
    """A request the server refused (4xx/5xx) or could not parse."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks to one :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing
    def request(self, method: str, path: str, payload=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        finally:
            conn.close()
        try:
            decoded = json.loads(raw) if raw else None
        except json.JSONDecodeError:
            raise ServiceClientError(resp.status, f"non-JSON response: {raw[:200]!r}") from None
        if resp.status >= 400:
            message = decoded.get("error", raw.decode(errors="replace")) if isinstance(decoded, dict) else str(decoded)
            raise ServiceClientError(resp.status, message)
        return decoded

    # ------------------------------------------------------------ endpoints
    def submit(self, request: dict) -> dict:
        return self.request("POST", "/submit", request)

    def submit_batch(self, requests: list[dict]) -> list[dict]:
        return self.request("POST", "/batch", requests)

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def status(self) -> dict:
        return self.request("GET", "/status")

    def trace(self) -> dict:
        return self.request("GET", "/trace")

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def advance(self, time: float) -> dict:
        return self.request("POST", "/advance", {"time": time})

    def drain(self) -> dict:
        return self.request("POST", "/drain", {})

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown", {})
