"""``repro.service`` — the always-on job-submission front end.

Layers (transport-agnostic core first, HTTP on top):

- :mod:`~repro.service.config` — :class:`ServiceConfig` +
  ``REPRO_SERVICE_*`` environment knobs.
- :mod:`~repro.service.clock` — virtual (deterministic) vs scaled
  wall clocks.
- :mod:`~repro.service.admission` — token-bucket rate limiting and
  capacity/queue-depth checks.
- :mod:`~repro.service.tenants` — per-tenant accounting and queues.
- :mod:`~repro.service.requests` — the submission wire format,
  edge validation, and the seeded request stream generator.
- :mod:`~repro.service.core` — :class:`ClusterService`: admit →
  queue → dispatch → advance over one cluster engine.
- :mod:`~repro.service.server` / :mod:`~repro.service.client` —
  the asyncio HTTP listener and its stdlib client.

The determinism contract — a virtual-clock service run is bit-identical
to an offline batch run on the same accepted job list — is documented
on :class:`ClusterService` and pinned by ``tests/test_service_soak.py``.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    REJECT_CAPACITY,
    REJECT_QUEUE_DEPTH,
    REJECT_RATE_LIMIT,
    TokenBucket,
)
from repro.service.clock import VirtualClock, WallClock, make_clock
from repro.service.config import ServiceConfig
from repro.service.core import ClusterService
from repro.service.requests import (
    JobRequest,
    RequestError,
    parse_request,
    requests_to_specs,
    seeded_requests,
    spec_to_request,
)
from repro.service.tenants import TenantRegistry, TenantState

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ClusterService",
    "JobRequest",
    "REJECT_CAPACITY",
    "REJECT_QUEUE_DEPTH",
    "REJECT_RATE_LIMIT",
    "RequestError",
    "ServiceConfig",
    "TenantRegistry",
    "TenantState",
    "TokenBucket",
    "VirtualClock",
    "WallClock",
    "make_clock",
    "parse_request",
    "requests_to_specs",
    "seeded_requests",
    "spec_to_request",
]
