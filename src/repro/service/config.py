"""Service configuration and its ``REPRO_SERVICE_*`` environment knobs.

Every knob of the always-on cluster service is a field of
:class:`ServiceConfig` with a matching environment variable, so a
deployment can be tuned without code: ``ServiceConfig.from_env()``
starts from the dataclass defaults and applies any ``REPRO_SERVICE_*``
override it finds.  The test suite pins and restores these variables
around every test (see ``tests/conftest.py``) — a soak run must not be
able to leak admission limits into an unrelated test.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace

#: Prefix shared by every service environment knob.
ENV_PREFIX = "REPRO_SERVICE_"

#: field name -> environment variable (all fields are overridable).
ENV_KNOBS = {
    "host": "REPRO_SERVICE_HOST",
    "port": "REPRO_SERVICE_PORT",
    "n_nodes": "REPRO_SERVICE_NODES",
    "recorder": "REPRO_SERVICE_RECORDER",
    "scheduler": "REPRO_SERVICE_SCHEDULER",
    "clock": "REPRO_SERVICE_CLOCK",
    "rate_per_s": "REPRO_SERVICE_RATE",
    "burst": "REPRO_SERVICE_BURST",
    "max_inflight": "REPRO_SERVICE_MAX_INFLIGHT",
    "max_pending": "REPRO_SERVICE_MAX_PENDING",
    "default_tenant": "REPRO_SERVICE_DEFAULT_TENANT",
    "time_scale": "REPRO_SERVICE_TIME_SCALE",
    "pump_interval_s": "REPRO_SERVICE_PUMP_INTERVAL",
}

_SCHEDULERS = ("fifo", "ecost")
_CLOCKS = ("virtual", "wall")


@dataclass(frozen=True)
class ServiceConfig:
    """One immutable description of a service deployment.

    Admission is per tenant: ``rate_per_s``/``burst`` parameterise the
    token bucket, ``max_inflight`` caps a tenant's accepted-but-not-
    completed jobs, and ``max_pending`` caps the same sum cluster-wide.
    The defaults are deliberately generous — a seeded replay with
    admission effectively disabled must accept every job, or the
    bit-identity comparison against the offline engine is vacuous.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    n_nodes: int = 8
    recorder: str = "off"
    scheduler: str = "fifo"  # "fifo" | "ecost"
    clock: str = "virtual"  # "virtual" | "wall"
    #: Token-bucket refill rate per tenant (accepted jobs per simulated
    #: second).  ``inf`` disables rate limiting.
    rate_per_s: float = float("inf")
    #: Token-bucket capacity per tenant (burst tolerance).
    burst: float = 64.0
    #: Per-tenant cap on accepted-but-not-completed jobs.
    max_inflight: int = 1_000_000
    #: Cluster-wide cap on accepted-but-not-completed jobs.
    max_pending: int = 10_000_000
    default_tenant: str = "default"
    #: Wall-clock mode: simulated seconds per wall-clock second.
    time_scale: float = 1.0
    #: Wall-clock mode: background dispatch/advance period (seconds).
    pump_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {_SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.clock not in _CLOCKS:
            raise ValueError(
                f"clock must be one of {_CLOCKS}, got {self.clock!r}"
            )
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0 (use inf to disable)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        if self.pump_interval_s <= 0:
            raise ValueError("pump_interval_s must be > 0")

    @classmethod
    def from_env(cls, env: dict[str, str] | None = None, **overrides) -> "ServiceConfig":
        """Defaults + ``REPRO_SERVICE_*`` env knobs + explicit overrides.

        Explicit keyword overrides win over the environment, which wins
        over the dataclass defaults.  Unparseable values raise with the
        offending variable named.
        """
        env = os.environ if env is None else env
        types = {f.name: f.type for f in fields(cls)}
        values: dict[str, object] = {}
        for name, var in ENV_KNOBS.items():
            raw = env.get(var)
            if raw is None:
                continue
            ftype = types[name]
            try:
                if ftype in ("int", int):
                    values[name] = int(raw)
                elif ftype in ("float", float):
                    values[name] = float(raw)
                else:
                    values[name] = raw
            except ValueError:
                raise ValueError(f"bad value {raw!r} for {var}") from None
        values.update(overrides)
        return cls(**values)

    def replace(self, **changes) -> "ServiceConfig":
        """A copy with ``changes`` applied (convenience for tests)."""
        return replace(self, **changes)
