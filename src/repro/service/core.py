"""The transport-agnostic service core: admit → queue → dispatch → advance.

:class:`ClusterService` is the always-on front end over one
:class:`~repro.mapreduce.engine.ClusterEngine`.  Requests are acked
immediately (accepted/rejected + reason); accepted jobs flow through
per-tenant accounting into the engine, which advances as a
*continuously progressing* simulation rather than a batch run.

Determinism contract (virtual-clock mode)
-----------------------------------------
With ``clock="virtual"`` the whole service is a pure function of its
request sequence: arrival timestamps come from the requests, admission
is a deterministic token-bucket/depth decision, and the engine is
advanced with the exact event ordering the offline batch run uses
(:meth:`ClusterEngine.inject_arrival` — events strictly before an
arrival first, the arrival ahead of same-timestamp derived events).
Feeding the accepted job list to an offline engine therefore
reproduces the service's results *bit for bit* — energy, makespan, and
placement sequence — which ``tests/test_service_soak.py`` pins at
50k-job scale.

Wall-clock mode trades that replayability for liveness: arrivals are
stamped with scaled wall time, accepted jobs buffer in tenant queues,
and a background pump (driven by the asyncio server) dispatches and
advances the engine to "now" between requests.

Scheduling
----------
``scheduler="fifo"`` runs the engine's first-fit FIFO placement on
fully-specified job requests.  ``scheduler="ecost"`` installs a live
:class:`~repro.core.controller.ECoSTController`: each arrival is
classified, queued, paired by class priority, and self-tuned on
arrival — the paper's online loop under sustained traffic.  The
controller is injected (or built lazily from the cached artifacts) and
its ``on_cluster_change``/blacklist seams stay available to the fault
layer exactly as in batch runs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.mapreduce.engine import ClusterEngine
from repro.mapreduce.job import JobSpec
from repro.service.admission import AdmissionController
from repro.service.clock import make_clock
from repro.service.config import ServiceConfig
from repro.service.requests import JobRequest, RequestError, parse_request
from repro.service.tenants import TenantRegistry
from repro.telemetry.profiling import ServiceTelemetry
from repro.telemetry.registry import MetricsRegistry, service_registry
from repro.telemetry.tracing import NULL_TRACER


class ClusterService:
    """Streaming ingestion front end over one cluster engine.

    Parameters
    ----------
    config:
        The deployment description (nodes, scheduler, clock, admission
        limits).  ``ServiceConfig.from_env()`` reads the
        ``REPRO_SERVICE_*`` knobs.
    cluster:
        Optional pre-built engine (tests inject traced or recorded
        engines); defaults to a fresh one per the config.
    controller_factory:
        ``scheduler="ecost"`` only: a callable ``(cluster) ->
        ECoSTController``.  Defaults to building the full pipeline from
        the cached STP/classifier artifacts on first use.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        cluster: ClusterEngine | None = None,
        controller_factory: Callable | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.clock = make_clock(self.config.clock, time_scale=self.config.time_scale)
        self.tracer = tracer
        self.cluster = (
            cluster
            if cluster is not None
            else ClusterEngine(
                self.config.n_nodes,
                recorder=self.config.recorder,
                tracer=tracer,
            )
        )
        self.admission = AdmissionController(
            rate_per_s=self.config.rate_per_s,
            burst=self.config.burst,
            max_inflight=self.config.max_inflight,
            max_pending=self.config.max_pending,
        )
        self.tenants = TenantRegistry(self.admission)
        self.telemetry = ServiceTelemetry()
        self.controller = None
        if self.config.scheduler == "ecost":
            factory = controller_factory or _default_controller_factory
            self.controller = factory(self.cluster)
        #: Accepted-but-not-dispatched jobs in global arrival order —
        #: dispatch preserves this order so the engine sees exactly the
        #: sequence an offline run would (per-tenant fairness is
        #: admission's job, not reordering's).
        self._ingest: deque[tuple[str, JobSpec]] = deque()
        #: Live job ownership, keyed by ``id(spec.instance)``: the
        #: AppInstance object is created fresh per accepted request and
        #: flows *unchanged* through both placement paths (the fifo
        #: engine keeps the spec; the ECoST controller re-specs the job
        #: with self-tuned knobs and a fresh job_id but reuses the
        #: instance), so object identity is the one stable join key.
        self._owner: dict[int, str] = {}
        self._harvested = 0  # prefix of cluster.results already credited
        self._last_arrival = 0.0
        #: Virtual mode advances the engine synchronously per request;
        #: wall mode leaves that to the background pump.
        self._auto_advance = self.config.clock == "virtual"

    # --------------------------------------------------------- ingestion
    def submit_request(self, payload: dict) -> dict:
        """Admit one submission request; returns the ack dict.

        Acks are terminal: ``{"ok": False, "error": ...}`` for a
        malformed payload, ``{"ok": True, "accepted": False, "reason":
        ...}`` for an admission rejection, and ``{"ok": True,
        "accepted": True, "job_id": ..., "tenant": ..., "time": ...}``
        for an accepted job.  Accepted jobs are never dropped — the
        conservation law the soak suite asserts.
        """
        self.telemetry.record_request()
        default_time = None if self._auto_advance else self.clock.now()
        try:
            req = parse_request(
                payload,
                default_tenant=self.config.default_tenant,
                default_time=default_time,
            )
            if self._auto_advance and req.time + 1e-9 < self._last_arrival:
                raise RequestError(
                    f"arrival time {req.time} precedes the stream's last "
                    f"arrival {self._last_arrival} (virtual time is monotone)"
                )
        except RequestError as exc:
            self.telemetry.record_malformed()
            return {"ok": False, "error": str(exc)}
        if not self._auto_advance:
            # Wall mode: the service stamps arrivals itself.
            req = JobRequest(
                tenant=req.tenant,
                time=max(self.clock.now(), self._last_arrival),
                code=req.code,
                data_bytes=req.data_bytes,
                frequency=req.frequency,
                block_size=req.block_size,
                n_mappers=req.n_mappers,
                job_id=req.job_id,
            )
        t = req.time
        self._last_arrival = max(self._last_arrival, t)
        self.clock.observe(t)
        if self._auto_advance:
            # Reflect every completion up to (strictly before) this
            # arrival in the admission state, exactly as a live engine
            # would have by the time the request lands.
            self._advance_engine(t)
        tenant = self.tenants.get(req.tenant)
        tenant.submitted += 1
        decision = self.admission.decide(
            tenant, t, total_inflight=self.tenants.total_inflight
        )
        if not decision.accepted:
            assert decision.reason is not None
            tenant.on_reject(decision.reason, t)
            self.telemetry.record_reject(decision.reason)
            return {"ok": True, "accepted": False, "reason": decision.reason}
        spec = req.build_spec()
        tenant.on_accept(t)
        self.telemetry.record_accept()
        self._owner[id(spec.instance)] = tenant.name
        if self._auto_advance:
            self.cluster_submit(spec)
            self.telemetry.record_dispatch()
        else:
            tenant.queue.append(spec)
            self._ingest.append((tenant.name, spec))
        return {
            "ok": True,
            "accepted": True,
            "job_id": spec.job_id,
            "tenant": tenant.name,
            "time": t,
        }

    def cluster_submit(self, spec: JobSpec) -> None:
        """Deliver one accepted job to the engine at its submit time."""
        if self.controller is not None:
            # Live ECoST path: register the arrival with the controller
            # and invoke its scheduler in offline tie order.
            self.controller.submit(spec.instance, spec.submit_time, notify=False)
            self.cluster.wake_now(spec.submit_time)
        else:
            self.cluster.inject_arrival(spec)
        self._harvest()

    # ---------------------------------------------------------- dynamics
    def _advance_engine(self, t: float) -> None:
        self.cluster.advance_until(t)
        self.telemetry.record_advance()
        self._harvest()

    def _harvest(self) -> None:
        """Credit completions the engine produced since the last look."""
        results = self.cluster.results
        n = len(results)
        if n == self._harvested:
            return
        fresh = n - self._harvested
        for result in results[self._harvested:n]:
            name = self._owner.pop(id(result.spec.instance), None)
            if name is not None:
                self.tenants.get(name).on_complete()
        self._harvested = n
        self.telemetry.record_complete(fresh)
        if self.controller is not None:
            # Live ECoST path: completion telemetry also feeds the
            # online self-tuner (no-op for plain STP backends).
            notify = getattr(self.controller, "notify_completions", None)
            if callable(notify):
                notify()

    def pump(self) -> int:
        """Wall-mode tick: dispatch buffered jobs, advance to now.

        Returns the number of jobs dispatched.  A no-op in virtual
        mode, where every request advances the engine synchronously.
        """
        dispatched = 0
        while self._ingest:
            name, spec = self._ingest.popleft()
            self.tenants.get(name).queue.popleft()
            self.cluster_submit(spec)
            dispatched += 1
        if dispatched:
            self.telemetry.record_dispatch(dispatched)
        if not self._auto_advance:
            self._advance_engine(self.clock.now())
        return dispatched

    def drain(self) -> dict:
        """Finish every accepted job; returns the run summary.

        Dispatches anything still buffered, processes every remaining
        engine event, and verifies conservation: accepted == completed
        (an accepted job is never dropped).  The service stays usable
        afterwards — new arrivals simply continue the simulation.
        """
        while self._ingest:
            name, spec = self._ingest.popleft()
            self.tenants.get(name).queue.popleft()
            self.cluster_submit(spec)
            self.telemetry.record_dispatch()
        self.cluster.drain_events()
        self._harvest()
        if self.cluster.pending or any(n.running for n in self.cluster.nodes):
            raise RuntimeError(
                "service drain stalled with unfinished jobs: "
                + ", ".join(s.label for s in self.cluster.pending)
            )
        if self.controller is not None:
            # Controller invariant: nothing left in the wait queue.
            if len(self.controller.queue):
                raise RuntimeError(
                    "service drain finished with applications still queued"
                )
        if self.telemetry.inflight != 0 or self._owner:
            raise RuntimeError(
                f"conservation violated: {self.telemetry.inflight} accepted "
                f"job(s) unaccounted for after drain"
            )
        return self.summary()

    # ----------------------------------------------------------- queries
    def summary(self) -> dict:
        """Run-level facts (stable keys; floats are exact engine values)."""
        makespan = self.cluster.makespan
        return {
            "completed": len(self.cluster.results),
            "makespan": makespan,
            "energy_joules": self.cluster.total_energy(makespan),
            "accepted": self.telemetry.accepted,
            "rejected": self.telemetry.rejected,
            "inflight": self.telemetry.inflight,
        }

    def status(self) -> dict:
        """Live service state for the ``/status`` endpoint."""
        return {
            "clock": self.clock.now(),
            "engine_now": self.cluster.now,
            "scheduler": self.config.scheduler,
            "clock_mode": self.config.clock,
            "n_nodes": len(self.cluster.nodes),
            "requests": self.telemetry.requests,
            "accepted": self.telemetry.accepted,
            "rejected": self.telemetry.rejected,
            "malformed": self.telemetry.malformed,
            "completed": self.telemetry.completed,
            "inflight": self.telemetry.inflight,
            "pending_placement": len(self.cluster.pending),
            "ingest_backlog": len(self._ingest),
            "tenants": self.tenants.as_dict(),
        }

    def registry(self) -> MetricsRegistry:
        """The pre-wired metrics registry (``/metrics`` payload)."""
        return service_registry(self)

    def metrics_snapshot(self) -> dict:
        return self.registry().snapshot()

    def trace_payload(self) -> dict:
        """Chrome-trace JSON of the attached tracer (empty when off)."""
        if not self.tracer.enabled:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return self.tracer.to_chrome()

    def advance_to(self, t: float) -> None:
        """Virtual-clock mode: advance the simulation to time ``t``."""
        if not self._auto_advance:
            raise RuntimeError("advance_to is only meaningful in virtual mode")
        self.clock.advance_to(t)
        self._advance_engine(t)

    @property
    def results(self):
        return self.cluster.results


def _default_controller_factory(cluster: ClusterEngine):
    """Live ECoST controller from the cached STP/classifier artifacts."""
    from repro.core.controller import ECoSTController
    from repro.experiments.artifacts import get_components

    components = get_components("reptree")
    return ECoSTController(cluster, components.pair_stp, components.classifier)
