"""Submission-request schema, validation, and seeded request streams.

A submission request is a flat JSON-able dict::

    {"tenant": "alice", "time": 12.5, "code": "wc", "data_bytes": 5e9,
     "frequency": 2.4e9, "block_size": 268435456, "n_mappers": 4,
     "job_id": 17}

``tenant`` and ``time`` default (to the service's default tenant and
its clock); the knob triple defaults to the application's *tuned*
class configuration (:data:`~repro.workloads.streams.
TUNED_CLASS_CONFIGS`) when omitted, so a client can submit just
``{"code": "wc", "data_bytes": 5e9}``.  Validation happens at the
edge: a malformed request is rejected with a message, never an engine
exception mid-simulation.

:func:`seeded_requests` derives a deterministic multi-tenant request
stream from :func:`~repro.workloads.streams.poisson_job_stream` — the
same generator the offline benchmarks use — so a service ingest run
and an offline batch run can be compared bit for bit on the same job
sequence (:func:`requests_to_specs` rebuilds the offline job list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.utils.rng import SeedLike, derive_rng
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app
from repro.workloads.streams import TUNED_CLASS_CONFIGS, poisson_job_stream


class RequestError(ValueError):
    """A malformed submission request (rejected at the service edge)."""


@dataclass(frozen=True)
class JobRequest:
    """One validated submission request."""

    tenant: str
    time: float
    code: str
    data_bytes: int
    frequency: float
    block_size: int
    n_mappers: int
    job_id: int | None = None

    def build_spec(self) -> JobSpec:
        """The engine-side job this request describes."""
        app = get_app(self.code)
        config = JobConfig(
            frequency=self.frequency,
            block_size=self.block_size,
            n_mappers=self.n_mappers,
        )
        if self.job_id is None:
            return JobSpec(
                instance=AppInstance(app, self.data_bytes),
                config=config,
                submit_time=self.time,
            )
        return JobSpec(
            instance=AppInstance(app, self.data_bytes),
            config=config,
            submit_time=self.time,
            job_id=self.job_id,
        )


def _number(payload: dict, key: str, *, required: bool = True):
    value = payload.get(key)
    if value is None:
        if required:
            raise RequestError(f"missing required field {key!r}")
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"field {key!r} must be a number, got {value!r}")
    return value


def parse_request(
    payload: dict,
    *,
    default_tenant: str = "default",
    default_time: float | None = None,
    node: NodeSpec = ATOM_C2758,
) -> JobRequest:
    """Validate one submission payload into a :class:`JobRequest`.

    ``default_time`` is the service clock's now — used when the payload
    carries no explicit ``time`` (wall-clock mode always overrides with
    its own now; the virtual-clock service requires one of the two).
    Raises :class:`RequestError` with a client-presentable message.
    """
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    tenant = payload.get("tenant", default_tenant)
    if not isinstance(tenant, str) or not tenant:
        raise RequestError("field 'tenant' must be a non-empty string")
    t = _number(payload, "time", required=False)
    if t is None:
        if default_time is None:
            raise RequestError("missing required field 'time'")
        t = default_time
    if t < 0:
        raise RequestError(f"field 'time' must be >= 0, got {t}")
    code = payload.get("code")
    if not isinstance(code, str):
        raise RequestError("missing required field 'code'")
    try:
        app = get_app(code)
    except KeyError as exc:
        raise RequestError(str(exc.args[0])) from None
    data_bytes = _number(payload, "data_bytes")
    if data_bytes <= 0:
        raise RequestError(f"field 'data_bytes' must be > 0, got {data_bytes}")
    tuned = TUNED_CLASS_CONFIGS[app.app_class.value]
    frequency = _number(payload, "frequency", required=False)
    block_size = _number(payload, "block_size", required=False)
    n_mappers = _number(payload, "n_mappers", required=False)
    config = JobConfig(
        frequency=float(frequency if frequency is not None else tuned.frequency),
        block_size=int(block_size if block_size is not None else tuned.block_size),
        n_mappers=int(n_mappers if n_mappers is not None else tuned.n_mappers),
    )
    try:
        config.validate_for(node)
    except ValueError as exc:
        raise RequestError(str(exc.args[0])) from None
    job_id = payload.get("job_id")
    if job_id is not None and (isinstance(job_id, bool) or not isinstance(job_id, int)):
        raise RequestError(f"field 'job_id' must be an integer, got {job_id!r}")
    return JobRequest(
        tenant=tenant,
        time=float(t),
        code=code,
        data_bytes=int(data_bytes),
        frequency=config.frequency,
        block_size=config.block_size,
        n_mappers=config.n_mappers,
        job_id=job_id,
    )


def spec_to_request(spec: JobSpec, tenant: str) -> dict:
    """The request payload that reproduces ``spec`` exactly."""
    return {
        "tenant": tenant,
        "time": spec.submit_time,
        "code": spec.instance.app.code,
        "data_bytes": spec.instance.data_bytes,
        "frequency": spec.config.frequency,
        "block_size": spec.config.block_size,
        "n_mappers": spec.config.n_mappers,
        "job_id": spec.job_id,
    }


def seeded_requests(
    n_jobs: int,
    *,
    seed: SeedLike = 0,
    tenants: Sequence[str] = ("t0", "t1", "t2"),
    mean_interarrival_s: float = 6.0,
    tuned: bool = True,
    job_ids_from: int = 1,
) -> list[dict]:
    """A deterministic multi-tenant request stream.

    Jobs come from :func:`poisson_job_stream` (the canonical seeded
    generator); tenant assignment is drawn from an *independent* rng
    stream (:func:`~repro.utils.rng.derive_rng`), so the job sequence —
    and therefore the offline comparison run — is byte-for-byte the one
    ``poisson_job_stream`` produces *for the same keyword arguments*:
    this function defaults to ``tuned=True`` and ``job_ids_from=1``
    where the plain stream defaults to ``tuned=False`` and per-process
    counter ids, so the matching offline call is
    ``poisson_job_stream(n, seed=seed, tuned=tuned,
    mean_interarrival_s=mean_interarrival_s,
    job_ids_from=job_ids_from)``.  Pinned ``job_ids_from`` also makes
    the ids — and every label derived from them — identical across
    ``REPRO_WORKERS`` pool workers and evaluation backends (the
    per-process default counter is neither).
    """
    if not tenants:
        raise ValueError("at least one tenant is required")
    tenant_rng = derive_rng(seed, "tenants")
    out = []
    for spec in poisson_job_stream(
        n_jobs,
        seed=seed,
        tuned=tuned,
        mean_interarrival_s=mean_interarrival_s,
        job_ids_from=job_ids_from,
    ):
        tenant = tenants[int(tenant_rng.integers(len(tenants)))]
        out.append(spec_to_request(spec, tenant))
    return out


def requests_to_specs(requests: Iterable[dict]) -> list[JobSpec]:
    """The offline job list equivalent to ``requests`` (in order).

    Used by the soak suite to drive a plain :class:`ClusterEngine` with
    exactly the jobs the service accepted.
    """
    return [parse_request(r, default_time=None).build_spec() for r in requests]
