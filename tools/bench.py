#!/usr/bin/env python
"""Tracked benchmark runner: the perf trajectory across PRs.

Runs the hot-path operations of ``benchmarks/test_microbench.py``
(without pytest) plus the heavy ``bench_steady_state_1k`` streaming
benchmark, and writes ``BENCH_<date>.json`` mapping each op to
``{mean_s, p50, p95, peak_rss}``.  Committing the JSON per PR gives
the repository a performance trajectory; CI replays the suite with
``--quick`` and fails on a >25% ``bench_steady_state_1k`` regression
against the committed baseline (``--compare``).

Usage::

    PYTHONPATH=src python tools/bench.py                 # full suite
    PYTHONPATH=src python tools/bench.py --quick         # fast ops, 3 rounds
    PYTHONPATH=src python tools/bench.py --quick --compare BENCH_2026-08-07.json
    PYTHONPATH=src python tools/bench.py --ops bench_steady_state_1k
"""

from __future__ import annotations

import argparse
import datetime
import json
import resource
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: bench_steady_state_1k must stay within this factor of the baseline.
REGRESSION_THRESHOLD = 1.25
#: The op the CI regression gate watches.
GATED_OP = "bench_steady_state_1k"


def _peak_rss_bytes() -> int:
    """Process high-water-mark RSS (ru_maxrss is KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss * 1024 if sys.platform.startswith("linux") else rss


# ------------------------------------------------------------- op registry
# Each op is (setup() -> args, run(args) -> checked result).  Setup cost
# (dataset builds, workload generation) is excluded from the timing.

def _op_solo_sweep():
    from repro.model.sweep import sweep_solo
    from repro.utils.units import GB
    from repro.workloads.base import AppInstance
    from repro.workloads.registry import get_app

    inst = AppInstance(get_app("ts"), 5 * GB)

    def run():
        result = sweep_solo(inst)
        assert len(result.edp) == 160

    return run


def _op_pair_sweep():
    from repro.model.sweep import sweep_pair
    from repro.utils.units import GB
    from repro.workloads.base import AppInstance
    from repro.workloads.registry import get_app

    a = AppInstance(get_app("st"), 5 * GB)
    b = AppInstance(get_app("fp"), 5 * GB)

    def run():
        result = sweep_pair(a, b)
        assert len(result.edp) == 2800

    return run


def _op_pair_metrics_vectorised():
    import numpy as np

    from repro.model.costmodel import pair_metrics
    from repro.utils.units import GB, MB
    from repro.workloads.registry import get_app

    rng = np.random.default_rng(0)
    n = 10_000
    freqs = rng.choice([1.2e9, 1.6e9, 2.0e9, 2.4e9], size=n)
    blocks = rng.choice([64, 128, 256, 512, 1024], size=n) * MB
    m1 = rng.integers(1, 8, size=n).astype(float)
    m2 = 8.0 - m1
    a, b = get_app("st").profile, get_app("wc").profile

    def run():
        result = pair_metrics(
            a, 5 * GB, freqs, blocks, m1, b, 5 * GB, freqs, blocks, m2
        )
        assert result.edp.shape == (n,)

    return run


def _op_des_cluster():
    from repro.mapreduce.engine import ClusterEngine
    from repro.mapreduce.job import JobSpec
    from repro.model.config import JobConfig
    from repro.utils.units import GB, GHZ, MB
    from repro.workloads.base import AppInstance
    from repro.workloads.registry import get_app

    def run():
        cluster = ClusterEngine(n_nodes=8)
        for i in range(16):
            code = ("st", "wc", "ts", "gp")[i % 4]
            cluster.submit(
                JobSpec(
                    instance=AppInstance(get_app(code), 5 * GB),
                    config=JobConfig(
                        frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=4
                    ),
                )
            )
        cluster.run()
        assert len(cluster.results) == 16

    return run


def _op_steady_state_1k():
    from repro.mapreduce.engine import ClusterEngine
    from repro.workloads.streams import poisson_job_stream

    specs = list(poisson_job_stream(1000, tuned=True))

    def run():
        cluster = ClusterEngine(n_nodes=8, recorder="off")
        for s in specs:
            cluster.submit(s)
        cluster.run()
        assert len(cluster.results) == 1000
        assert cluster.telemetry.recontext_hit_rate >= 0.8

    return run


def _op_hetero_steady_state_1k():
    from repro.hardware import roster_from_classes
    from repro.mapreduce.engine import ClusterEngine
    from repro.workloads.streams import poisson_job_stream

    # bench_steady_state_1k's stream on a mixed atom/xeon roster: the
    # per-class free-core segments, class-tagged recontext cache keys
    # and roster-aware energy accounting all sit on this hot path.
    specs = list(poisson_job_stream(1000, tuned=True, job_ids_from=1))
    roster = roster_from_classes(("atom", "xeon") * 4)

    def run():
        cluster = ClusterEngine(recorder="off", roster=roster)
        for s in specs:
            cluster.submit(s)
        cluster.run()
        assert len(cluster.results) == 1000
        assert cluster.heterogeneous

    return run


def _op_faulty_steady_state():
    from repro.faults import FaultInjector, InjectionPlan
    from repro.mapreduce.engine import ClusterEngine
    from repro.workloads.streams import poisson_job_stream

    # The bench_steady_state_1k stream under ~2% injection (20 faults
    # per 1000 arrivals), timing the recovery path: evictions, retries,
    # speculative duplicates, crash/restore bookkeeping.
    specs = list(poisson_job_stream(1000, tuned=True, job_ids_from=1))
    horizon = specs[-1].submit_time + 4000.0
    plan = InjectionPlan.generate(
        8, horizon, rate_per_1ks=20_000.0 / horizon, seed=7
    )

    def run():
        cluster = ClusterEngine(n_nodes=8, recorder="off")
        for s in specs:
            cluster.submit(s)
        FaultInjector(cluster, plan).install()
        cluster.run()
        assert len(cluster.results) == 1000
        assert cluster.telemetry.faults_injected > 0

    return run


def _op_functional_wordcount():
    from repro.mapreduce.functional import MapReduceRuntime
    from repro.workloads.registry import get_app

    app = get_app("wc")
    runtime = MapReduceRuntime(n_reducers=4, split_records=250)
    records = list(app.generate_records(2000, seed=0))

    def run():
        output = runtime.run(app, records)
        assert output.n_input_records == 2000

    return run


def _op_reptree_predict():
    import numpy as np

    from repro.core.database import build_database
    from repro.core.stp import build_training_dataset
    from repro.ml.reptree import REPTree
    from repro.utils.units import GB
    from repro.workloads.base import AppInstance
    from repro.workloads.registry import get_app

    instances = [
        AppInstance(get_app(code), size)
        for code in ("wc", "st", "ts", "fp")
        for size in (1 * GB, 5 * GB)
    ]
    _db, sweeps = build_database(instances, keep_sweeps=True)
    dataset = build_training_dataset(
        instances, sweeps=sweeps, rows_per_pair=200, seed=0
    )
    tree = REPTree(seed=0).fit(dataset.X, np.log(dataset.y))
    grid = dataset.X[:2800]

    def run():
        out = tree.predict(grid)
        assert out.shape == (2800,)

    return run


def _batch_sweep_scenarios():
    """~4096 single-job scenarios spanning the studied knob grids."""
    from repro.conformance.scenarios import Scenario, ScenarioJob
    from repro.utils.units import GB, GHZ, MB
    from repro.workloads.registry import ALL_APPS

    scenarios = []
    for code in ALL_APPS:
        for freq in (1.2 * GHZ, 1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ):
            for block in (64 * MB, 128 * MB, 256 * MB, 512 * MB):
                for mappers in range(1, 9):
                    for size in (1 * GB, 5 * GB, 10 * GB):
                        scenarios.append(
                            Scenario(
                                n_nodes=1,
                                jobs=(
                                    ScenarioJob(
                                        code=code,
                                        data_bytes=size,
                                        frequency=freq,
                                        block_size=block,
                                        n_mappers=mappers,
                                        submit_time=0.0,
                                    ),
                                ),
                                recorder="off",
                            )
                        )
    return scenarios[:4096]


def _op_batch_sweep_4096():
    from repro.batch import evaluate_scenarios

    scenarios = _batch_sweep_scenarios()

    def run():
        outcomes = evaluate_scenarios(scenarios, backend="batch")
        assert len(outcomes) == 4096
        assert not any(o.fallback for o in outcomes)

    return run


def _op_scalar_sweep_4096():
    # The per-scenario baseline bench_batch_sweep_4096 is measured
    # against: identical closed forms, one float at a time.
    from repro.batch import evaluate_scenarios

    scenarios = _batch_sweep_scenarios()

    def run():
        outcomes = evaluate_scenarios(scenarios, backend="scalar")
        assert len(outcomes) == 4096

    return run


def _op_steady_state_256node():
    from repro.mapreduce.engine import ClusterEngine
    from repro.workloads.streams import poisson_job_stream

    # A saturated big-cluster stream: 256 nodes, 4000 tuned arrivals at
    # a 0.2 s mean gap.  This is the shape whose placement path used to
    # be O(pending × nodes) per event before the free-core index.
    specs = list(
        poisson_job_stream(
            4000, tuned=True, mean_interarrival_s=0.2, job_ids_from=1
        )
    )

    def run():
        cluster = ClusterEngine(n_nodes=256, recorder="off")
        for s in specs:
            cluster.submit(s)
        cluster.run()
        assert len(cluster.results) == 4000

    return run


def _op_placement_100k_jobs():
    from repro.mapreduce.engine import ClusterEngine
    from repro.workloads.streams import poisson_job_stream

    # Deep backlog: 100k jobs hitting 64 nodes at 10 ms gaps, so the
    # pending queue holds tens of thousands of jobs for most of the
    # run — the pending-membership/removal hot path at full depth.
    specs = list(
        poisson_job_stream(
            100_000, tuned=True, mean_interarrival_s=0.01, job_ids_from=1
        )
    )

    def run():
        cluster = ClusterEngine(n_nodes=64, recorder="off")
        for s in specs:
            cluster.submit(s)
        cluster.run()
        assert len(cluster.results) == 100_000

    return run


def _op_service_ingest_10k():
    from repro.service import ClusterService, ServiceConfig, seeded_requests

    # The full service hot path: 10k pre-generated requests through
    # parse → admission → tenant accounting → incremental engine
    # advance, then drain.  Measures the ingestion overhead the service
    # layers add on top of the raw engine (bench_steady_state_1k).
    requests = seeded_requests(
        10_000, seed=0, tenants=("t0", "t1", "t2"), mean_interarrival_s=1.0
    )
    config = ServiceConfig(n_nodes=16)

    def run():
        service = ClusterService(config)
        for req in requests:
            service.submit_request(req)
        summary = service.drain()
        assert summary["completed"] == 10_000
        assert summary["inflight"] == 0

    return run


def _op_sharded_sweep():
    from repro.shard import evaluate_scenarios_sharded

    scenarios = _batch_sweep_scenarios()

    def run():
        outcomes = evaluate_scenarios_sharded(
            scenarios, backend="batch", workers=2
        )
        assert len(outcomes) == 4096
        assert not any(o.fallback for o in outcomes)

    return run


def _op_online_relearn():
    from repro.online.scenario import run_drift_scenario

    # The full online self-tuning loop under drift: champion/challenger
    # shadow scoring, Page–Hinkley detection, learning-period re-sweeps,
    # window refits, and the crash-triggered on_cluster_change relearn.
    # Setup warms the artifact-cached pipeline so rounds measure the
    # online layer, not the offline model build.  A lean window keeps
    # the per-refresh tree refit proportionate to the 24-job stream.
    kwargs = dict(n_jobs=24, seed=0, stp_kwargs={"window": 1536})
    run_drift_scenario(**kwargs)

    def run():
        report = run_drift_scenario(**kwargs)
        assert report.summary["completed"] == 24
        assert report.decisions > 0
        assert report.counters["online.relearn_sweeps"] > 0

    return run


#: op name -> (setup factory, in the quick subset?)
OPS: dict[str, tuple] = {
    "bench_solo_sweep": (_op_solo_sweep, True),
    "bench_pair_sweep": (_op_pair_sweep, True),
    "bench_pair_metrics_vectorised": (_op_pair_metrics_vectorised, True),
    "bench_des_cluster": (_op_des_cluster, True),
    "bench_steady_state_1k": (_op_steady_state_1k, True),
    "bench_hetero_steady_state_1k": (_op_hetero_steady_state_1k, True),
    "bench_faulty_steady_state": (_op_faulty_steady_state, True),
    "bench_batch_sweep_4096": (_op_batch_sweep_4096, True),
    "bench_scalar_sweep_4096": (_op_scalar_sweep_4096, False),
    "bench_functional_wordcount": (_op_functional_wordcount, False),
    "bench_reptree_predict": (_op_reptree_predict, False),
    # Scale lane (not in --quick: CI runs these explicitly via --ops).
    "bench_service_ingest_10k": (_op_service_ingest_10k, False),
    "bench_online_relearn": (_op_online_relearn, False),
    "bench_steady_state_256node": (_op_steady_state_256node, False),
    "bench_placement_100k_jobs": (_op_placement_100k_jobs, False),
    "bench_sharded_sweep": (_op_sharded_sweep, False),
}


def run_op(name: str, rounds: int) -> dict:
    """Time one op over ``rounds`` (plus one untimed warmup round)."""
    run = OPS[name][0]()
    run()  # warmup: first-call caches, imports, allocator growth
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        run()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return {
        "mean_s": statistics.fmean(samples),
        "p50": samples[len(samples) // 2],
        "p95": samples[min(len(samples) - 1, int(len(samples) * 0.95))],
        "peak_rss": _peak_rss_bytes(),
        "rounds": rounds,
    }


def compare(results: dict, baseline_path: Path) -> int:
    """Gate: fail if the watched op regressed beyond the threshold."""
    baseline = json.loads(baseline_path.read_text())
    base_ops = baseline.get("ops", baseline)
    if GATED_OP not in base_ops or GATED_OP not in results:
        print(f"compare: {GATED_OP} missing from baseline or this run; skipping")
        return 0
    base = base_ops[GATED_OP]["mean_s"]
    now = results[GATED_OP]["mean_s"]
    ratio = now / base
    print(
        f"compare: {GATED_OP} {now * 1e3:.1f} ms vs baseline "
        f"{base * 1e3:.1f} ms ({ratio:.2f}x)"
    )
    if ratio > REGRESSION_THRESHOLD:
        print(
            f"FAIL: {GATED_OP} regressed {ratio:.2f}x > "
            f"{REGRESSION_THRESHOLD}x threshold"
        )
        return 1
    return 0


def reference_metrics() -> dict[str, float]:
    """Flat MetricsRegistry snapshot of one small seeded steady run.

    Embedded in the benchmark payload so engine-counter drift (cache
    hit rates, event mix) is visible next to the timing numbers when
    two BENCH files are diffed.
    """
    from repro.mapreduce.engine import ClusterEngine
    from repro.telemetry.registry import MetricsRegistry, cluster_registry
    from repro.workloads.streams import poisson_job_stream

    cluster = ClusterEngine(n_nodes=8, recorder="off")
    for s in poisson_job_stream(200, tuned=True, job_ids_from=1):
        cluster.submit(s)
    cluster.run()
    return MetricsRegistry.flatten(cluster_registry(cluster).snapshot())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fast op subset, 3 rounds (CI mode)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="timing rounds per op (default: 5, or 3 with --quick)",
    )
    parser.add_argument(
        "--ops", nargs="*", default=None,
        help=f"ops to run (default: suite); available: {', '.join(OPS)}",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: BENCH_<date>.json in the repo root)",
    )
    parser.add_argument(
        "--compare", type=Path, default=None, metavar="BASELINE_JSON",
        help=f"fail if {GATED_OP} regressed >25%% vs this baseline",
    )
    parser.add_argument(
        "--note", default=None,
        help="free-form note recorded in the JSON (e.g. the pre-change "
        "reference timing)",
    )
    args = parser.parse_args(argv)

    if args.ops:
        unknown = [o for o in args.ops if o not in OPS]
        if unknown:
            parser.error(f"unknown ops: {', '.join(unknown)}")
        names = args.ops
    else:
        names = [n for n, (_, quick) in OPS.items() if quick or not args.quick]
    rounds = args.rounds or (3 if args.quick else 5)

    results = {}
    for name in names:
        results[name] = run_op(name, rounds)
        r = results[name]
        print(
            f"{name}: mean {r['mean_s'] * 1e3:.1f} ms, "
            f"p50 {r['p50'] * 1e3:.1f} ms, p95 {r['p95'] * 1e3:.1f} ms"
        )

    date = datetime.date.today().isoformat()
    out = args.out or REPO_ROOT / f"BENCH_{date}.json"
    payload = {
        "date": date,
        "rounds": rounds,
        "quick": bool(args.quick),
        "ops": results,
        "metrics": reference_metrics(),
    }
    if args.note:
        payload["note"] = args.note
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if args.compare is not None:
        return compare(results, args.compare)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
