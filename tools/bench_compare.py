#!/usr/bin/env python
"""Compare two bench payloads and gate on regressions.

Diffs two JSON payloads written by ``tools/bench.py --out``, prints a
per-op table of mean/p50/peak-RSS deltas, and exits nonzero when any
*gated* op's mean regressed past the threshold::

    PYTHONPATH=src python tools/bench_compare.py BENCH_old.json BENCH_new.json
    ... --gate bench_steady_state_1k bench_steady_state_256node --threshold 1.25
    ... --gate-all    # gate every op present in both payloads

Ops present in only one payload are listed but never gated.  The
default gate and threshold match ``tools/bench.py --compare``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: Keep in sync with tools/bench.py.
DEFAULT_GATE = ("bench_steady_state_1k",)
DEFAULT_THRESHOLD = 1.25


def load_payload(path: str | Path) -> dict:
    payload = json.loads(Path(path).read_text())
    if "ops" not in payload or not isinstance(payload["ops"], dict):
        raise ValueError(f"{path}: not a bench payload (no 'ops' table)")
    return payload


def _fmt_ratio(ratio: float | None) -> str:
    if ratio is None:
        return "      -"
    return f"{ratio:6.2f}x"


def compare_payloads(
    baseline: dict,
    candidate: dict,
    *,
    gate: tuple[str, ...] = DEFAULT_GATE,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """Return (report lines, gated-op failure lines)."""
    base_ops = baseline["ops"]
    cand_ops = candidate["ops"]
    names = sorted(set(base_ops) | set(cand_ops))
    lines = [
        f"baseline: {baseline.get('date', '?')}  candidate: "
        f"{candidate.get('date', '?')}",
        f"{'op':<34} {'base mean':>11} {'cand mean':>11} {'mean':>7} "
        f"{'p50':>7} {'rss':>7}",
    ]
    failures: list[str] = []
    for name in names:
        base = base_ops.get(name)
        cand = cand_ops.get(name)
        if base is None or cand is None:
            side = "baseline" if cand is None else "candidate"
            lines.append(f"{name:<34} (only in {side})")
            continue

        def ratio(key: str) -> float | None:
            b, c = base.get(key), cand.get(key)
            if not b or c is None:
                return None
            return c / b

        mean_r = ratio("mean_s")
        lines.append(
            f"{name:<34} {base['mean_s'] * 1e3:9.1f}ms {cand['mean_s'] * 1e3:9.1f}ms "
            f"{_fmt_ratio(mean_r)} {_fmt_ratio(ratio('p50'))} "
            f"{_fmt_ratio(ratio('peak_rss'))}"
        )
        if name in gate and mean_r is not None and mean_r > threshold:
            failures.append(
                f"REGRESSION {name}: mean {base['mean_s'] * 1e3:.1f} ms -> "
                f"{cand['mean_s'] * 1e3:.1f} ms ({mean_r:.2f}x > "
                f"{threshold:.2f}x threshold)"
            )
    missing_gates = [g for g in gate if g not in base_ops or g not in cand_ops]
    for g in missing_gates:
        failures.append(f"REGRESSION {g}: gated op missing from a payload")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline bench JSON payload")
    parser.add_argument("candidate", help="candidate bench JSON payload")
    parser.add_argument(
        "--gate",
        nargs="+",
        default=list(DEFAULT_GATE),
        help="ops whose mean regression fails the run "
        f"(default: {' '.join(DEFAULT_GATE)})",
    )
    parser.add_argument(
        "--gate-all",
        action="store_true",
        help="gate every op present in both payloads",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"mean-time ratio that fails a gated op (default {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    baseline = load_payload(args.baseline)
    candidate = load_payload(args.candidate)
    if args.gate_all:
        gate = tuple(sorted(set(baseline["ops"]) & set(candidate["ops"])))
    else:
        gate = tuple(args.gate)
    lines, failures = compare_payloads(
        baseline, candidate, gate=gate, threshold=args.threshold
    )
    for line in lines:
        print(line)
    if failures:
        for failure in failures:
            print(failure)
        return 1
    print(f"gate ok: {', '.join(gate)} within {args.threshold:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
