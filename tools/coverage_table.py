#!/usr/bin/env python
"""Render a per-package coverage table from a ``coverage.json`` report.

CI's coverage lane runs pytest with ``--cov-report=json`` and pipes the
result through this script, which aggregates line coverage per
``repro.<subpackage>`` and emits a GitHub-flavoured markdown table —
appended to ``$GITHUB_STEP_SUMMARY`` when that variable is set (i.e. in
Actions), printed to stdout otherwise.  The whole-tree floor is
enforced by ``--cov-fail-under``; this table is the per-package
breakdown that tells you *where* the next uncovered lines live.

Usage::

    PYTHONPATH=src python -m pytest --cov=repro --cov-report=json
    python tools/coverage_table.py coverage.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from pathlib import Path


def package_of(path: str) -> str:
    """Map a measured file path to its ``repro.<subpackage>`` bucket."""
    parts = Path(path).parts
    try:
        i = parts.index("repro")
    except ValueError:
        return "(other)"
    if i + 2 < len(parts):
        return f"repro.{parts[i + 1]}"
    return "repro"  # top-level modules: __main__.py, __init__.py


def build_rows(report: dict) -> list[tuple[str, int, int, float]]:
    """(package, covered, statements, percent) per package, worst first."""
    covered: dict[str, int] = defaultdict(int)
    statements: dict[str, int] = defaultdict(int)
    for path, data in report["files"].items():
        summary = data["summary"]
        pkg = package_of(path)
        covered[pkg] += summary["covered_lines"]
        statements[pkg] += summary["num_statements"]
    rows = [
        (pkg, covered[pkg], statements[pkg],
         100.0 * covered[pkg] / statements[pkg] if statements[pkg] else 100.0)
        for pkg in statements
    ]
    rows.sort(key=lambda r: (r[3], r[0]))
    return rows


def render(rows: list[tuple[str, int, int, float]]) -> str:
    lines = [
        "### Coverage by package",
        "",
        "| package | covered | statements | % |",
        "|---|---:|---:|---:|",
    ]
    total_cov = sum(r[1] for r in rows)
    total_stmt = sum(r[2] for r in rows)
    for pkg, cov, stmt, pct in rows:
        lines.append(f"| `{pkg}` | {cov} | {stmt} | {pct:.1f} |")
    pct = 100.0 * total_cov / total_stmt if total_stmt else 100.0
    lines.append(f"| **total** | {total_cov} | {total_stmt} | **{pct:.1f}** |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="coverage.json",
                        help="path to coverage.py's JSON report")
    args = parser.parse_args(argv)
    try:
        report = json.loads(Path(args.report).read_text())
    except FileNotFoundError:
        print(f"error: {args.report} not found — run pytest with "
              "--cov-report=json first", file=sys.stderr)
        return 1
    table = render(build_rows(report))
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(table)
    print(table, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
