#!/usr/bin/env python
"""Render a per-package coverage table from a ``coverage.json`` report.

CI's coverage lane runs pytest with ``--cov-report=json`` and pipes the
result through this script, which aggregates line coverage per
``repro.<subpackage>`` and emits a GitHub-flavoured markdown table —
appended to ``$GITHUB_STEP_SUMMARY`` when that variable is set (i.e. in
Actions), printed to stdout otherwise.  The whole-tree floor is
enforced by ``--cov-fail-under``; this table is the per-package
breakdown that tells you *where* the next uncovered lines live.

Usage::

    PYTHONPATH=src python -m pytest --cov=repro --cov-report=json
    python tools/coverage_table.py coverage.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from pathlib import Path


def package_of(path: str) -> str:
    """Map a measured file path to its ``repro.<subpackage>`` bucket."""
    parts = Path(path).parts
    try:
        i = parts.index("repro")
    except ValueError:
        return "(other)"
    if i + 2 < len(parts):
        return f"repro.{parts[i + 1]}"
    return "repro"  # top-level modules: __main__.py, __init__.py


def missing_packages(report: dict, src_root: Path) -> list[str]:
    """Subpackages on disk that the report never measured.

    A package nobody imports produces no entry in ``coverage.json`` at
    all, so it would silently vanish from the table — 0% coverage
    reading as "nothing to report".  (``repro.batch`` shipped in the
    same PR as this check for exactly that reason.)
    """
    measured = {package_of(p) for p in report["files"]}
    repro_dir = src_root / "repro"
    if not repro_dir.is_dir():
        return []
    on_disk = {
        f"repro.{d.name}"
        for d in repro_dir.iterdir()
        if d.is_dir() and (d / "__init__.py").exists()
    }
    return sorted(on_disk - measured)


def build_rows(report: dict) -> list[tuple[str, int, int, float]]:
    """(package, covered, statements, percent) per package, worst first."""
    covered: dict[str, int] = defaultdict(int)
    statements: dict[str, int] = defaultdict(int)
    for path, data in report["files"].items():
        summary = data["summary"]
        pkg = package_of(path)
        covered[pkg] += summary["covered_lines"]
        statements[pkg] += summary["num_statements"]
    rows = [
        (pkg, covered[pkg], statements[pkg],
         100.0 * covered[pkg] / statements[pkg] if statements[pkg] else 100.0)
        for pkg in statements
    ]
    rows.sort(key=lambda r: (r[3], r[0]))
    return rows


def render(rows: list[tuple[str, int, int, float]]) -> str:
    lines = [
        "### Coverage by package",
        "",
        "| package | covered | statements | % |",
        "|---|---:|---:|---:|",
    ]
    total_cov = sum(r[1] for r in rows)
    total_stmt = sum(r[2] for r in rows)
    for pkg, cov, stmt, pct in rows:
        lines.append(f"| `{pkg}` | {cov} | {stmt} | {pct:.1f} |")
    pct = 100.0 * total_cov / total_stmt if total_stmt else 100.0
    lines.append(f"| **total** | {total_cov} | {total_stmt} | **{pct:.1f}** |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="coverage.json",
                        help="path to coverage.py's JSON report")
    parser.add_argument("--src", type=Path,
                        default=Path(__file__).resolve().parent.parent / "src",
                        help="source root checked for unmeasured packages")
    args = parser.parse_args(argv)
    try:
        report = json.loads(Path(args.report).read_text())
    except FileNotFoundError:
        print(f"error: {args.report} not found — run pytest with "
              "--cov-report=json first", file=sys.stderr)
        return 1
    absent = missing_packages(report, args.src)
    if absent:
        print(
            "error: packages on disk but absent from the coverage "
            f"report: {', '.join(absent)} — the measured suite never "
            "imported them",
            file=sys.stderr,
        )
        return 1
    table = render(build_rows(report))
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(table)
    print(table, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
