#!/usr/bin/env python
"""Profile the event engine at big-cluster scale.

Runs named scenarios spanning 256/1024-node clusters and 1e5–1e6
queued jobs, reporting wall time and per-job cost for each.  With
``--profile`` each scenario additionally runs under :mod:`cProfile`
and prints the top functions by cumulative time — this is the harness
that located the ``used_cores`` / pending-rescan hot spots the
placement indexes now bypass.

Usage::

    PYTHONPATH=src python tools/profile_scale.py
    PYTHONPATH=src python tools/profile_scale.py --scenarios backlog_1m
    PYTHONPATH=src python tools/profile_scale.py --profile --top 15
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time


def _run_scenario(n_nodes: int, n_jobs: int, gap_s: float, recorder: str) -> int:
    from repro.mapreduce.engine import ClusterEngine
    from repro.workloads.streams import poisson_job_stream

    cluster = ClusterEngine(n_nodes=n_nodes, recorder=recorder)
    for spec in poisson_job_stream(
        n_jobs, tuned=True, mean_interarrival_s=gap_s, job_ids_from=1
    ):
        cluster.submit(spec)
    cluster.run()
    assert len(cluster.results) == n_jobs
    return n_jobs


#: name -> (n_nodes, n_jobs, mean interarrival seconds)
SCENARIOS: dict[str, tuple[int, int, float]] = {
    # Saturated big clusters: placement pressure scales with node count.
    "steady_256": (256, 4_000, 0.2),
    "steady_1024": (1024, 8_000, 0.05),
    # Deep backlogs: the pending queue holds ~1e4-1e6 jobs for most of
    # the run, so pending membership/removal dominates.
    "backlog_100k": (64, 100_000, 0.01),
    "backlog_1m": (256, 1_000_000, 0.001),
}

#: backlog_1m takes minutes even post-fix; run it only when asked.
DEFAULT_SCENARIOS = ("steady_256", "steady_1024", "backlog_100k")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(SCENARIOS),
        default=list(DEFAULT_SCENARIOS),
        help="scenarios to run (default: all but backlog_1m)",
    )
    parser.add_argument(
        "--recorder",
        default="off",
        help="recorder mode for the cluster (off, full, columnar, "
        "streaming[:N]; default off)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each scenario under cProfile and print hot functions",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=12,
        help="rows of cProfile output per scenario (default 12)",
    )
    args = parser.parse_args(argv)

    for name in args.scenarios:
        n_nodes, n_jobs, gap_s = SCENARIOS[name]
        print(
            f"{name}: {n_nodes} nodes, {n_jobs} jobs, "
            f"{gap_s * 1e3:.0f} ms mean gap, recorder={args.recorder}"
        )
        if args.profile:
            profiler = cProfile.Profile()
            t0 = time.perf_counter()
            profiler.runcall(
                _run_scenario, n_nodes, n_jobs, gap_s, args.recorder
            )
            elapsed = time.perf_counter() - t0
        else:
            t0 = time.perf_counter()
            _run_scenario(n_nodes, n_jobs, gap_s, args.recorder)
            elapsed = time.perf_counter() - t0
        print(
            f"  {elapsed:.3f} s wall, {n_jobs / elapsed:,.0f} jobs/s, "
            f"{elapsed / n_jobs * 1e6:.1f} us/job"
        )
        if args.profile:
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
