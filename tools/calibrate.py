"""Calibration harness: prints the shape targets the profiles must hit.

Run after changing hardware constants or application profiles:

    python tools/calibrate.py

Targets (qualitative, from the paper):
  T1  class signatures: C high u_cpu, I high u_disk / low u_cpu,
      M long runtime + high u_mem, H mixed
  T2  COLAO/ILAO ratio: >= ~0.9 everywhere, maximum for I-I, minimum
      for M-involved pairs
  T3  min-EDP ranking over class pairs: I-I best, M-X worst
  T4  tuning sensitivity decreasing with mapper count
"""

from __future__ import annotations

import numpy as np

from repro.model.costmodel import standalone_metrics
from repro.model.sweep import sweep_pair, sweep_solo
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import ALL_APPS, get_app


def main() -> None:
    insts = {c: AppInstance(get_app(c), 10 * GB) for c in ALL_APPS}

    print("== T1: solo signatures (10GB, oracle-tuned) ==")
    print(f"{'app':5} {'cls':4} {'bestcfg':>20} {'T(s)':>7} {'P(W)':>6} "
          f"{'EDP':>10} {'u_cpu':>6} {'u_dsk':>6} {'u_net':>6} {'u_mem':>6}")
    solos = {}
    for c, inst in insts.items():
        r = sweep_solo(inst)
        solos[c] = r
        i = r.best_index
        m = r.metrics
        umem = m.mem_demand[i] / 10 / 2**30
        print(f"{c:5} {str(inst.app_class):4} {r.best_config.label:>20} "
              f"{m.duration[i]:7.0f} {m.power[i]:6.1f} {m.edp[i]:10.3e} "
              f"{m.u_cpu[i]:6.2f} {m.u_disk[i]:6.2f} {m.u_net[i]:6.2f} {umem:6.2f}")

    print("\n== T2/T3: pair table (10GB x 10GB) ==")
    reps = {"C": "wc", "H": "gp", "I": "st", "M": "fp"}
    rows = []
    for i, (ka, a) in enumerate(reps.items()):
        for kb, b in list(reps.items())[i:]:
            ps = sweep_pair(insts[a], insts[b])
            sa, sb = solos[a], solos[b]
            ilao = float(
                (sa.metrics.energy[sa.best_index] + sb.metrics.energy[sb.best_index])
                * (sa.metrics.duration[sa.best_index] + sb.metrics.duration[sb.best_index])
            )
            ca, cb = ps.best_configs
            rows.append((f"{ka}-{kb}", ilao / ps.best_edp, ps.best_edp,
                         float(ps.metrics.stretch[ps.best_index]),
                         f"{ca.label}|{cb.label}"))
    rows.sort(key=lambda r: r[2])
    print(f"{'pair':6} {'CO/IL':>6} {'colaoEDP':>11} {'stretch':>7}  configs")
    for name, ratio, edp, st, cfgs in rows:
        print(f"{name:6} {ratio:6.2f} {edp:11.3e} {st:7.2f}  {cfgs}")

    print("\n== T4: tuning sensitivity vs mappers (wc & st, 10GB) ==")
    for code in ("wc", "st"):
        inst = insts[code]
        line = []
        for m in (1, 2, 4, 8):
            base = standalone_metrics(inst.profile, inst.data_bytes, 1.2e9, 64 * 2**20, m)
            fgrid = np.array([1.2e9, 1.6e9, 2.0e9, 2.4e9])
            bgrid = np.array([64, 128, 256, 512, 1024]) * 2**20
            ff, bb = np.meshgrid(fgrid, bgrid, indexing="ij")
            best = standalone_metrics(inst.profile, inst.data_bytes, ff.ravel(), bb.ravel(), m)
            line.append(float(np.asarray(base.edp)) / float(best.edp.min()))
        print(f"{code}: improvement(base/best) at m=1,2,4,8: "
              + ", ".join(f"{v:.2f}x" for v in line))


if __name__ == "__main__":
    main()
