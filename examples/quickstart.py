"""Quickstart: run a MapReduce job functionally and on the simulated cluster.

Demonstrates the two halves of the reproduction:

1. the *functional* MapReduce runtime executing WordCount's real
   mapper/reducer over synthetic text, and
2. the *timing* simulation of the same application on the Atom
   microserver node, including the effect of the paper's three tuning
   knobs (frequency, HDFS block size, mapper count) on EDP.

Run:  python examples/quickstart.py
"""

from repro.mapreduce.engine import NodeEngine
from repro.mapreduce.functional import MapReduceRuntime
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.model.sweep import sweep_solo
from repro.utils.tables import render_table
from repro.utils.units import GB, GHZ, MB, fmt_duration
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


def functional_demo() -> None:
    print("== 1. Functional MapReduce: WordCount over synthetic text ==")
    app = get_app("wc")
    runtime = MapReduceRuntime(n_reducers=2, split_records=200)
    output = runtime.run_generated(app, n_records=1000, seed=42)
    top = sorted(output.records, key=lambda kv: -kv[1])[:5]
    print(f"map tasks: {output.n_map_tasks}, "
          f"intermediate records: {output.n_intermediate_records}")
    print("top words:", ", ".join(f"{w}={c}" for w, c in top))


def timing_demo() -> None:
    print("\n== 2. Timing simulation: wc@5GB on one Atom node ==")
    instance = AppInstance(get_app("wc"), 5 * GB)
    rows = []
    for label, config in [
        ("stock Hadoop", JobConfig(frequency=1.2 * GHZ, block_size=64 * MB, n_mappers=2)),
        ("all cores", JobConfig(frequency=1.2 * GHZ, block_size=64 * MB, n_mappers=8)),
        ("tuned", sweep_solo(instance).best_config),
    ]:
        engine = NodeEngine()
        engine.submit(JobSpec(instance=instance, config=config))
        result = engine.run_to_completion()[0]
        edp = result.energy_joules * result.duration
        rows.append([label, config.label, fmt_duration(result.duration),
                     f"{result.energy_joules/1e3:.1f}kJ", f"{edp:.3e}"])
    print(render_table(
        ["setting", "config", "runtime", "energy", "EDP (J*s)"], rows,
    ))
    print("\nTuning all three knobs jointly is what creates the headroom "
          "ECoST exploits (paper §4.1).")


if __name__ == "__main__":
    functional_demo()
    timing_demo()
