"""Iterative analytics on MapReduce: K-Means, PageRank, SVM, HMM.

Each algorithm runs one MapReduce job per iteration, with its driver
feeding the reduce output back into the next iteration's mapper state
— the Mahout pattern around Hadoop.  This example runs all four to
convergence on synthetic data and reports their trajectories.

Run:  python examples/iterative_analytics.py
"""

import numpy as np

from repro.utils.tables import render_table
from repro.workloads.drivers import run_hmm_em, run_kmeans, run_pagerank, run_svm


def main() -> None:
    rows = []

    km_result, centroids = run_kmeans(n_records=400, n_clusters=4, seed=1)
    rows.append([
        "K-Means", km_result.iterations, str(km_result.converged),
        f"{km_result.final_delta:.2e}",
        f"{len(centroids)} centroids",
    ])

    pr_result, ranks = run_pagerank(n_edges=1500, n_nodes=120, seed=1)
    top = max(ranks, key=ranks.get)
    rows.append([
        "PageRank", pr_result.iterations, str(pr_result.converged),
        f"{pr_result.final_delta:.2e}",
        f"top vertex {top} rank {ranks[top]:.2f}",
    ])

    svm_result, weights, accuracy = run_svm(n_records=600, epochs=25, seed=1)
    rows.append([
        "SVM", svm_result.iterations, str(svm_result.converged),
        f"{svm_result.final_delta:.2e}",
        f"train accuracy {accuracy:.0%}",
    ])

    hmm_result, emit = run_hmm_em(n_sequences=30, iterations=6, seed=1)
    rows.append([
        "HMM (Baum-Welch)", hmm_result.iterations, str(hmm_result.converged),
        f"{hmm_result.final_delta:.2e}",
        f"emission rows sum to {emit.sum(axis=1).mean():.3f}",
    ])

    print(render_table(
        ["algorithm", "iterations", "converged", "last delta", "outcome"],
        rows,
        title="Iterative MapReduce analytics (one job per iteration)",
    ))

    print("\nK-Means convergence trajectory:",
          " -> ".join(f"{d:.2f}" for d in km_result.history[:8]))


if __name__ == "__main__":
    main()
