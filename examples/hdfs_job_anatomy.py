"""Anatomy of a MapReduce job over HDFS: splits, locality, shuffle.

Walks one WordCount job through the task-level execution path:

1. a 2 GB input file is written into the mini-HDFS (replication 3,
   blocks spread across the cluster);
2. the locality-aware scheduler assigns one map task per block,
   preferring workers that hold a local replica (delay scheduling);
3. each map task spills sorted partition runs through the bounded
   map-output buffer;
4. reducers merge their partitions' runs (k-way heap merge) and
   produce the final counts.

The printed counters are the familiar Hadoop job-report block —
data-local vs rack-remote maps, spilled records, shuffled bytes.

Run:  python examples/hdfs_job_anatomy.py
"""

from repro.hdfs.filesystem import MiniHdfs
from repro.mapreduce.tasks import TaskJobRunner
from repro.utils.tables import render_table
from repro.utils.units import GB, MB, fmt_bytes
from repro.workloads.registry import get_app


def main() -> None:
    hdfs = MiniHdfs(n_nodes=4, replication=3)
    f = hdfs.write_file("corpus", 2 * GB, 256 * MB)
    print(f"HDFS: wrote {f.name!r} ({fmt_bytes(f.size)}) as "
          f"{len(f.blocks)} x {fmt_bytes(f.block_size)} blocks, replication 3")
    for block in f.blocks[:3]:
        nodes = hdfs.namenode.locate(block.block_id)
        print(f"  {block.block_id}: replicas on nodes {nodes}")
    print("  ...")

    runner = TaskJobRunner(hdfs, n_workers=4, n_reducers=3, buffer_records=400)
    output, counters, attempts = runner.run(get_app("wc"), "corpus")

    print("\nPer-task execution:")
    rows = [
        [a.task_id, a.block_id, a.worker,
         "local" if a.data_local else "REMOTE", a.n_records_in, a.n_spills]
        for a in attempts
    ]
    print(render_table(
        ["task", "block", "worker", "locality", "records", "spills"], rows
    ))

    print("\nJob counters (the Hadoop job-report block):")
    print(f"  map tasks               = {counters.n_map_tasks}")
    print(f"  data-local maps         = {counters.data_local_maps} "
          f"({counters.locality_fraction:.0%})")
    print(f"  map input records       = {counters.map_input_records}")
    print(f"  map output records      = {counters.map_output_records} "
          "(after combiner)")
    print(f"  spills                  = {counters.total_spills}")
    print(f"  shuffled segments/bytes = {counters.shuffled_segments} / "
          f"{fmt_bytes(counters.shuffled_bytes_estimate)}")
    print(f"  reduce output records   = {counters.reduce_output_records}")

    top = sorted(output, key=lambda kv: -kv[1])[:5]
    print("\ntop words:", ", ".join(f"{w}={c}" for w, c in top))


if __name__ == "__main__":
    main()
