"""Full ECoST pipeline on an 8-node cluster (the paper's headline demo).

Builds the complete offline stage — exhaustive sweeps of the five
known training applications, the configuration database, the REPTree
self-tuning model and the classifier — then submits a 16-application
mixed workload (Table 3's WS4) of mostly *unknown* applications to the
online controller.  The controller classifies each arrival, pairs it
via the I > H > C > M decision tree, self-tunes the pair's six knobs
and places it on the discrete-event cluster.

For comparison, the same workload runs under untuned single-node
mapping (SNM) and the brute-force upper bound (UB).

First run takes ~1 minute (offline sweeps + model training); artifacts
are memoised in-process only.

Run:  python examples/ecost_datacenter.py
"""

from repro.baselines.mapping import build_components, evaluate_policy
from repro.experiments.scenarios import scenario_instances
from repro.utils.tables import render_table
from repro.utils.units import fmt_duration


def main() -> None:
    print("Training ECoST's offline stage from the 5 known applications...")
    components = build_components(model_kind="mlp")

    workload = scenario_instances("WS4")  # [C,C,H,I] x 4 at 5 GB
    print(f"Workload: {', '.join(i.label for i in workload)}\n")

    rows = []
    outcomes = {}
    for policy in ("SNM", "CBM", "PTM", "ECoST", "UB"):
        out = evaluate_policy(policy, workload, 8, components=components)
        outcomes[policy] = out
        rows.append([
            policy,
            fmt_duration(out.makespan),
            f"{out.energy/1e6:.2f}MJ",
            f"{out.edp:.3e}",
        ])
    ub = outcomes["UB"].edp
    for row, policy in zip(rows, ("SNM", "CBM", "PTM", "ECoST", "UB")):
        row.append(outcomes[policy].edp / ub)
    print(render_table(
        ["policy", "makespan", "energy", "EDP (J*s)", "vs UB"],
        rows,
        title="WS4 on an 8-node Atom cluster",
        floatfmt=".2f",
    ))

    print("\nECoST's online scheduling decisions:")
    for line in outcomes["ECoST"].details:
        print("  " + line)

    gap = (outcomes["ECoST"].edp / ub - 1) * 100
    print(f"\nECoST lands within {gap:.1f}% of the brute-force upper bound")
    print("(paper: within 8% on the 8-node cluster) while SNM/CBM burn "
          f"{outcomes['SNM'].edp/ub:.1f}x / {outcomes['CBM'].edp/ub:.1f}x.")


if __name__ == "__main__":
    main()
