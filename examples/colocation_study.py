"""Co-location study: why sharing a node beats running serially.

Reproduces the paper's §4.2 motivation at example scale: two I/O-bound
Sort jobs, each exhaustively tuned, are run (a) serially (ILAO) and
(b) co-located with jointly tuned knobs (COLAO).  The co-located pair
overlaps the idle gaps the framework leaves on every resource, so the
makespan nearly halves while power barely rises — a multiplicative EDP
win.  A memory-bound pair is shown as the counter-example.

Run:  python examples/colocation_study.py
"""

from repro.baselines.colao import colao_best
from repro.baselines.ilao import ilao_best, ilao_pair_edp
from repro.utils.tables import render_table
from repro.utils.units import GB, fmt_duration
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


def study(code_a: str, code_b: str, gb: int = 5) -> list:
    a = AppInstance(get_app(code_a), gb * GB)
    b = AppInstance(get_app(code_b), gb * GB)
    solo_a, solo_b = ilao_best(a), ilao_best(b)
    serial_time = solo_a.duration + solo_b.duration
    serial_edp = ilao_pair_edp(solo_a, solo_b)
    co = colao_best(a, b)
    return [
        f"{a.label}+{b.label}",
        f"{a.app_class}-{b.app_class}",
        fmt_duration(serial_time),
        fmt_duration(co.makespan),
        f"{co.config_a.label} | {co.config_b.label}",
        serial_edp / co.edp,
    ]


def main() -> None:
    rows = [
        study("st", "st"),   # I-I: the paper's best case
        study("st", "wc"),   # I-C
        study("wc", "wc"),   # C-C: cores contended, little to gain
        study("fp", "fp"),   # M-M: the paper's worst case
    ]
    print(render_table(
        ["pair", "classes", "serial time", "co-located time",
         "co-located tuned configs", "EDP gain (x)"],
        rows,
        title="ILAO (serial, tuned alone) vs COLAO (co-located, jointly tuned)",
        floatfmt=".2f",
    ))
    print("\nI/O-bound pairs overlap their idle resources -> biggest win;")
    print("memory-bound pairs fight over cores, cache and DRAM -> no win.")
    print("This asymmetry is exactly what ECoST's pairing decision tree")
    print("exploits (priority I > H > C > M, paper Fig. 5).")


if __name__ == "__main__":
    main()
