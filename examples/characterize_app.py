"""Characterise an unknown application the way ECoST's Step 1 does.

Runs the simulated measurement stack — perf (multiplexed PMU
counters), dstat (1 Hz resource monitor) and the Wattsup power meter —
over a learning-period execution of an application, assembles the
paper's 14-feature vector, and classifies the app into one of the four
classes using the nearest-centroid classifier trained on the five
known applications.

Run:  python examples/characterize_app.py [app_code] [size_gb]
"""

import sys

from repro.analysis.classify import NearestCentroidClassifier
from repro.analysis.features import PROFILING_CONFIG, build_feature_matrix
from repro.mapreduce.engine import NodeEngine
from repro.mapreduce.job import JobSpec
from repro.telemetry.profiling import FEATURE_NAMES, profile_features
from repro.telemetry.wattsup import WattsupMeter
from repro.utils.tables import render_table
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import TRAINING_APPS, get_app, instances_for


def main(code: str = "km", size_gb: int = 5) -> None:
    instance = AppInstance(get_app(code), size_gb * GB)
    print(f"Profiling unknown application {instance.label} "
          f"(true class {instance.app_class}, hidden from the pipeline)\n")

    # Learning-period measurement: perf + dstat -> 14 features.
    feats = profile_features(instance, PROFILING_CONFIG, seed=0)
    print(render_table(
        ["feature", "value"],
        [[name, feats[name]] for name in FEATURE_NAMES],
        title="Learning-period feature vector",
        floatfmt=".2f",
    ))

    # Wall-power trace of a full run (the Wattsup view).
    engine = NodeEngine()
    engine.submit(JobSpec(instance=instance, config=PROFILING_CONFIG))
    result = engine.run_to_completion()[0]
    trace = WattsupMeter().trace_from_intervals(engine.intervals, seed=0)
    print(f"\nWattsup: {trace.duration_s:.0f}s trace, "
          f"avg {trace.average_watts:.1f}W wall, "
          f"{trace.average_above_idle:.1f}W above idle "
          f"(paper's §2.5 idle-subtraction methodology)")
    print(f"run: {result.duration:.0f}s, {result.energy_joules/1e3:.1f}kJ")

    # Classification against the known training applications.
    training = instances_for(TRAINING_APPS)
    fm = build_feature_matrix(training, seed=0)
    classifier = NearestCentroidClassifier().fit(
        fm, [i.app_class for i in training]
    )
    predicted = classifier.classify(feats)
    distances = classifier.distances(feats)
    print("\nCentroid distances: " + ", ".join(
        f"{cls.value}={d:.2f}" for cls, d in sorted(distances.items(), key=lambda kv: kv[1])
    ))
    verdict = "correct" if predicted is instance.app_class else (
        f"differs from true class {instance.app_class} (borderline app)"
    )
    print(f"Classified as: {predicted}  [{verdict}]")


if __name__ == "__main__":
    code = sys.argv[1] if len(sys.argv) > 1 else "km"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(code, size)
